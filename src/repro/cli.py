"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``algorithms``
    List the registered vertex programs with domain and defaults.
``run``
    Run one algorithm on one synthetic graph and print its trace.
``characterize``
    Sweep (nedges, α) for one algorithm and print the metric table —
    the paper's Section-4 methodology for a single algorithm.
``corpus``
    Build (or load from cache) the behavior corpus for a profile and
    print its summary.
``design``
    Search the corpus for the best benchmark ensemble under spread or
    coverage, optionally restricted to chosen algorithms.
``ensemble``
    Best-ensemble curves over a range of sizes through the blocked
    fast search engine (DESIGN §15): pick metric, sizes, beam width,
    engine/strategy, distance-tile budget, and worker count.
``stats``
    Summarize the telemetry of a run directory: per-phase time
    breakdown, failure taxonomy, cache hit rates, iteration latency.
``tail``
    Print (and optionally follow) the structured event log of a run.
``node``
    Run a node agent against a shared distributed-build work queue
    (see ``corpus --distributed``): claim tasks, execute them with a
    local worker crew, publish results into the shared store.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro._util.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph computation behavior characterization and "
                    "robust benchmark design (Yang & Chien, HPDC 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list registered algorithms")

    run = sub.add_parser("run", help="run one algorithm on one graph")
    run.add_argument("algorithm")
    run.add_argument("--nedges", type=int, default=10_000,
                     help="edge count for ga/clustering/cf/mrf domains")
    run.add_argument("--alpha", type=float, default=2.5,
                     help="power-law exponent")
    run.add_argument("--nrows", type=int, default=100,
                     help="matrix rows / image side for matrix/grid domains")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--mode", choices=("vectorized", "reference"),
                     default="vectorized")
    run.add_argument("--work-model", choices=("unit", "measured"),
                     default="unit")
    run.add_argument("--max-iterations", type=int, default=None)
    run.add_argument("--direction", choices=("auto", "push", "pull"),
                     default=None,
                     help="gather traversal direction for fusable "
                          "programs: push follows the frontier, pull "
                          "reduces over the whole graph, auto switches "
                          "on frontier density (default: auto)")
    run.add_argument("--direction-threshold", type=float, default=None,
                     metavar="FRAC",
                     help="active fraction of |V| above which "
                          "--direction auto gathers in pull mode "
                          "(default: 0.25)")
    run.add_argument("--no-fused-kernels", action="store_true",
                     help="disable the fused CSR gather/scatter kernels "
                          "(always-push callback paths; results are "
                          "bit-identical either way)")
    run.add_argument("--health-policy", choices=("strict", "degrade", "off"),
                     default=None,
                     help="convergence-watchdog policy: strict raises, "
                          "degrade stops early with a flagged partial "
                          "trace, off disables (default: strict)")
    run.add_argument("--health-check-every", type=int, default=None,
                     metavar="N", help="run health checks every N "
                                       "iterations (default: 1)")
    run.add_argument("--inject-fault", default=None, metavar="KIND@ITER",
                     help="engine-level fault injection for testing: "
                          "nan@3, diverge@2 or counter@1")
    run.add_argument("--checkpoint-every", default=None, metavar="SPEC",
                     help="snapshot run state every N iterations and/or "
                          "T seconds ('5', '2.5s' or '5,30s')")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="snapshot directory (default: "
                          "$REPRO_CHECKPOINT_DIR or ./.repro_checkpoints)")
    run.add_argument("--from-checkpoint", action="store_true",
                     help="resume from the newest snapshot of this run "
                          "if one exists")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write the full trace as JSON")
    _add_obs_arguments(run)

    cha = sub.add_parser("characterize",
                         help="sweep (nedges, α) for one algorithm")
    cha.add_argument("algorithm")
    cha.add_argument("--sizes", type=int, nargs="+",
                     default=[1_000, 3_000, 10_000])
    cha.add_argument("--alphas", type=float, nargs="+",
                     default=[2.0, 2.5, 3.0])
    cha.add_argument("--seed", type=int, default=7)

    cor = sub.add_parser("corpus", help="build the behavior corpus")
    cor.add_argument("--profile", default=None,
                     help="profile name (default: $REPRO_PROFILE or smoke)")
    cor.add_argument("--no-cache", action="store_true")
    cor.add_argument("--progress", action="store_true")
    cor.add_argument("--workers", type=int, default=1,
                     help="worker processes (runs are independent)")
    cor.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="per-run wall-clock limit (default: profile's)")
    cor.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retries for transient failures (default: "
                          "profile's)")
    cor.add_argument("--resume", action="store_true",
                     help="re-execute cells with recorded transient "
                          "failures (crash/timeout); cached successes and "
                          "memory-budget failures are reused")
    cor.add_argument("--health-policy",
                     choices=("strict", "degrade", "off"), default=None,
                     help="per-run convergence-watchdog policy "
                          "(default: strict)")
    cor.add_argument("--health-check-every", type=int, default=None,
                     metavar="N",
                     help="run health checks every N iterations "
                          "(default: 1)")
    cor.add_argument("--checkpoint-every", default=None, metavar="SPEC",
                     help="snapshot each cell's run state every N "
                          "iterations and/or T seconds ('5', '2.5s' or "
                          "'5,30s'); killed or timed-out cells then "
                          "resume from their last snapshot")
    cor.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="snapshot directory (default: "
                          "$REPRO_CHECKPOINT_DIR or ./.repro_checkpoints)")
    cor.add_argument("--no-shm", action="store_true",
                     help="disable the shared-memory graph plane; "
                          "workers materialize graphs per process "
                          "(through their own LRU cache)")
    cor.add_argument("--graph-cache-bytes", type=int, default=None,
                     metavar="BYTES",
                     help="per-process graph cache capacity (default: "
                          "$REPRO_GRAPH_CACHE_BYTES or 256 MiB; 0 "
                          "disables)")
    cor.add_argument("--lease-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="scheduler lease deadline; a worker whose "
                          "heartbeat goes silent this long has its task "
                          "revoked and re-dispatched (default: 60)")
    cor.add_argument("--heartbeat-every", type=float, default=None,
                     metavar="SECONDS",
                     help="worker heartbeat interval (default: 1)")
    cor.add_argument("--max-lease-expiries", type=int, default=None,
                     metavar="K",
                     help="quarantine a cell as poison after K lease "
                          "expiries (default: 3)")
    cor.add_argument("--speculative", action="store_true",
                     help="when workers idle, launch one shadow copy of "
                          "each straggling run; first completion wins")
    cor.add_argument("--gc-quarantine", type=int, default=None,
                     metavar="KEEP",
                     help="after the build, sweep result/snapshot "
                          "quarantine dirs down to the newest KEEP "
                          "entries (oldest removed first)")
    cor.add_argument("--distributed", default=None, metavar="QUEUE_DIR",
                     help="coordinate the build over a shared work "
                          "queue at this directory (a shared "
                          "filesystem path); peer machines join with "
                          "'repro node QUEUE_DIR'. Without peers the "
                          "build degrades to the local path.")
    _add_obs_arguments(cor)

    nod = sub.add_parser(
        "node", help="run a node agent for a distributed corpus build")
    nod.add_argument("queue_dir",
                     help="shared work-queue directory (same path the "
                          "coordinator passed to --distributed)")
    nod.add_argument("--workers", type=int, default=1,
                     help="local worker processes (default: 1)")
    nod.add_argument("--node-id", default=None, metavar="ID",
                     help="stable node identity (default: "
                          "<hostname>-<pid>-<rand>)")
    nod.add_argument("--poll", type=float, default=None, metavar="SECONDS",
                     help="queue poll interval (default: 0.05)")
    nod.add_argument("--idle-exit", type=float, default=None,
                     metavar="SECONDS",
                     help="exit after this long without holding any "
                          "claim (default: run until the build "
                          "completes)")
    nod.add_argument("--manifest-wait", type=float, default=60.0,
                     metavar="SECONDS",
                     help="how long to wait for a coordinator to "
                          "publish the queue manifest (default: 60)")

    des = sub.add_parser("design", help="search for the best ensemble")
    des.add_argument("--profile", default=None)
    des.add_argument("--size", type=int, default=10)
    des.add_argument("--metric", choices=("spread", "coverage"),
                     default="spread")
    des.add_argument("--algorithms", nargs="+", default=None,
                     help="restrict the pool to these algorithms")
    des.add_argument("--scheme", choices=("max", "log"), default="max")
    des.add_argument("--samples", type=int, default=20_000,
                     help="coverage sample budget")

    ens = sub.add_parser(
        "ensemble",
        help="best-ensemble curves via the blocked search engine")
    ens.add_argument("--profile", default=None,
                     help="corpus profile (default: $REPRO_PROFILE or "
                          "smoke)")
    ens.add_argument("--metric", choices=("spread", "coverage"),
                     default="spread")
    ens.add_argument("--sizes", type=int, nargs="+",
                     default=[2, 4, 6, 8, 10],
                     help="ensemble sizes for the curve")
    ens.add_argument("--scheme", choices=("max", "log"), default="max")
    ens.add_argument("--beam-width", type=int, default=64)
    ens.add_argument("--engine", choices=("fast", "legacy"), default=None,
                     help="search engine (default: "
                          "$REPRO_ENSEMBLE_ENGINE or fast)")
    ens.add_argument("--strategy", choices=("beam", "greedy"),
                     default=None,
                     help="greedy = lazy-greedy submodular selection "
                          "(coverage only, (1-1/e) guarantee)")
    ens.add_argument("--block-bytes", type=int, default=None,
                     metavar="BYTES",
                     help="distance-tile size for the fast engine "
                          "(default: 32 MiB)")
    ens.add_argument("--precision", choices=("float64", "float32"),
                     default=None,
                     help="distance-tile storage precision; scores "
                          "always accumulate in float64")
    ens.add_argument("--workers", type=int, default=None,
                     help="scoring threads for the fast engine "
                          "(-1 = all cores; default: 1)")
    ens.add_argument("--samples", type=int, default=None,
                     help="coverage search sample budget "
                          "(default: 4000)")
    ens.add_argument("--no-refine", action="store_true",
                     help="skip swap refinement of each best state")
    _add_obs_arguments(ens)

    ccz = sub.add_parser(
        "characterize-corpus",
        help="full Section-4-style characterization of a built corpus")
    ccz.add_argument("--profile", default=None)
    ccz.add_argument("--workers", type=int, default=1)

    rep = sub.add_parser(
        "report",
        help="assemble benchmark artifacts into one document")
    rep.add_argument("--artifacts", default="benchmarks/artifacts",
                     help="directory of *.txt artifacts")
    rep.add_argument("--store", default=None, metavar="DIR",
                     help="result-store directory whose cached traces "
                          "feed the run-metadata section (default: "
                          "$REPRO_CACHE_DIR or ./.repro_cache)")
    rep.add_argument("--out", default=None,
                     help="output path (default: stdout)")

    sta = sub.add_parser(
        "stats", help="summarize the telemetry of a run directory")
    sta.add_argument("run_dir",
                     help="observability directory (or its parent) "
                          "holding telemetry.json / events.jsonl")
    sta.add_argument("--node", default=None, metavar="ID",
                     help="restrict event-derived sections to one "
                          "node of a distributed build")
    sta.add_argument("--format", choices=("table", "json"),
                     default="table",
                     help="human tables (default) or a machine-"
                          "readable JSON payload for CI / services")

    trc = sub.add_parser(
        "trace",
        help="render a build's causal span tree + ASCII timeline")
    trc.add_argument("run_dir",
                     help="observability directory (or its parent) "
                          "holding events.jsonl")
    trc.add_argument("--trace-id", default=None, metavar="ID",
                     help="trace to render when the log holds several "
                          "(default: the first one seen)")
    trc.add_argument("--cell", default=None, metavar="LABEL",
                     help="render only the span subtree of one cell "
                          "(e.g. 'pagerank@ga-ne1000-a2.0')")
    trc.add_argument("--max-depth", type=int, default=None,
                     help="limit tree depth (default: unlimited)")
    trc.add_argument("--check", action="store_true",
                     help="exit 1 if any orphan span is found "
                          "(CI / chaos-smoke gate)")

    crt = sub.add_parser(
        "critical-path",
        help="decompose a build's wall clock along its critical path")
    crt.add_argument("run_dir",
                     help="observability directory (or its parent) "
                          "holding events.jsonl")
    crt.add_argument("--format", choices=("table", "json"),
                     default="table",
                     help="human report (default) or the raw JSON "
                          "decomposition")
    crt.add_argument("--max-chain", type=int, default=30,
                     help="path segments to print (default: 30)")

    ben = sub.add_parser(
        "bench", help="benchmark artifact utilities")
    ben_sub = ben.add_subparsers(dest="bench_command", required=True)
    cmp_ = ben_sub.add_parser(
        "compare",
        help="diff BENCH_*.json artifacts against a baseline with "
             "regression thresholds (warn-then-fail gate)")
    cmp_.add_argument("baseline",
                      help="directory holding the baseline BENCH_*.json")
    cmp_.add_argument("candidate",
                      help="directory holding the candidate BENCH_*.json")
    cmp_.add_argument("--warn-pct", type=float, default=10.0,
                      help="regression %% that triggers a warning "
                           "(default: 10)")
    cmp_.add_argument("--fail-pct", type=float, default=25.0,
                      help="regression %% that fails the command "
                           "(default: 25)")
    cmp_.add_argument("--strict", action="store_true",
                      help="also gate absolute wall/throughput metrics "
                           "(use when both sides ran on one machine)")
    cmp_.add_argument("--artifact", action="append", default=None,
                      metavar="NAME",
                      help="compare only this artifact (repeatable; "
                           "default: all known BENCH_*.json)")
    cmp_.add_argument("--format", choices=("table", "json"),
                      default="table",
                      help="human report (default) or the raw JSON "
                           "comparison")

    tai = sub.add_parser(
        "tail", help="print or follow a run's structured event log")
    tai.add_argument("run_dir",
                     help="observability directory (or its parent) "
                          "holding events.jsonl")
    tai.add_argument("-n", "--lines", type=int, default=20, metavar="N",
                     help="events to show from the end (default: 20)")
    tai.add_argument("--follow", action="store_true",
                     help="keep printing new events as they land")
    tai.add_argument("--for", dest="duration", type=float, default=None,
                     metavar="SECONDS",
                     help="with --follow, stop after this long "
                          "(default: until Ctrl-C)")
    tai.add_argument("--raw", action="store_true",
                     help="print raw JSON events instead of formatted "
                          "lines")
    tai.add_argument("--node", default=None, metavar="ID",
                     help="only show events stamped with this node id")
    return parser


def _add_obs_arguments(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--obs", choices=("off", "basic", "full"), default=None,
        help="telemetry level (default: $REPRO_OBS or off); 'basic' "
             "records sampled metrics only, 'full' adds per-span "
             "events")
    sub_parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="telemetry output directory (default: $REPRO_OBS_DIR, or "
             "<store>/obs for corpus builds, or ./.repro_obs)")


def _cmd_algorithms(_args) -> int:
    from repro.algorithms.registry import iter_algorithms
    from repro.experiments.reporting import format_table

    rows = []
    for rec in iter_algorithms():
        rows.append((rec.name, rec.abbrev, rec.domain,
                     "yes" if rec.always_active else "no",
                     ", ".join(f"{k}={v}" for k, v in
                               rec.default_params.items()) or "-"))
    print(format_table(
        ["name", "paper", "domain", "always active", "default params"],
        rows, title="Registered algorithms"))
    return 0


def _spec_for(args, domain: str):
    from repro.experiments.config import GraphSpec

    if domain in ("ga", "clustering", "cf", "mrf"):
        return GraphSpec.for_domain(domain, nedges=args.nedges,
                                    alpha=args.alpha, seed=args.seed)
    return GraphSpec.for_domain(domain, nrows=args.nrows, seed=args.seed)


def _configure_cli_obs(args) -> "tuple | None":
    """Install global telemetry for a one-shot command, if requested.

    Returns ``(obs_path, run_id, level)`` when telemetry is on, else
    None. The caller must pair this with :func:`_export_cli_obs` in a
    ``finally`` block so even a failed run leaves inspectable output.
    """
    import os
    import uuid
    from pathlib import Path

    from repro.obs.events import EVENTS_FILENAME
    from repro.obs.telemetry import OBS_DIR_ENV, configure, resolve_obs_level

    level = resolve_obs_level(args.obs)
    if level == "off":
        return None
    obs_path = Path(args.obs_dir or os.environ.get(OBS_DIR_ENV)
                    or ".repro_obs")
    run_id = uuid.uuid4().hex[:12]
    tel = configure(level, run_id=run_id,
                    events_path=obs_path / EVENTS_FILENAME)
    # One-shot commands keep a random run id (no resume semantics to
    # re-link), but still root a trace so `repro trace` renders the
    # command's span tree.
    from repro.obs.tracing import TraceContext, derive_id

    trace_id = derive_id("cli", run_id)
    tel.set_trace(TraceContext(trace_id, derive_id(trace_id, "run")))
    tel.emit("run_start", command=args.command,
             algorithm=getattr(args, "algorithm", None), level=level)
    return obs_path, run_id, level


def _export_cli_obs(obs_state: "tuple | None") -> None:
    """Write the exporters and tear down global telemetry."""
    if obs_state is None:
        return
    obs_path, run_id, level = obs_state
    from repro.obs.export import write_prometheus, write_telemetry_json
    from repro.obs.telemetry import deactivate, get_telemetry

    tel = get_telemetry()
    tel.emit("run_end", runs=tel.counter_total("runs_total"))
    snapshot = tel.snapshot()
    write_telemetry_json(obs_path, snapshot, run=run_id, level=level)
    write_prometheus(obs_path, snapshot)
    deactivate()


def _cmd_run(args) -> int:
    from repro.algorithms.registry import info
    from repro.behavior.metrics import compute_metrics
    from repro.behavior.run import run_computation
    from repro.behavior.shapes import classify_activity_shape

    domain = info(args.algorithm).domain
    spec = _spec_for(args, domain)
    options: dict = {"mode": args.mode, "work_model": args.work_model}
    if args.max_iterations is not None:
        options["max_iterations"] = args.max_iterations
    if args.direction is not None:
        options["direction"] = args.direction
    if args.direction_threshold is not None:
        options["direction_threshold"] = args.direction_threshold
    if args.no_fused_kernels:
        options["fused_kernels"] = False
    if args.health_policy is not None:
        options["health_policy"] = args.health_policy
    if args.health_check_every is not None:
        options["health_check_every"] = args.health_check_every
    if args.inject_fault is not None:
        options["inject_fault"] = args.inject_fault
    if args.checkpoint_every is not None or args.from_checkpoint:
        from repro.engine.checkpoint import (
            CheckpointConfig,
            CheckpointPolicy,
            SnapshotStore,
        )

        options["checkpoint"] = CheckpointConfig(
            store=SnapshotStore(args.checkpoint_dir),
            policy=CheckpointPolicy.parse(args.checkpoint_every or "1"),
            key=f"{args.algorithm}-{spec.cache_key()}",
            resume=args.from_checkpoint,
        )
    obs_state = _configure_cli_obs(args)
    try:
        trace = run_computation(args.algorithm, spec, options=options)
    finally:
        _export_cli_obs(obs_state)
    print(trace.summary())
    resumed = trace.meta.get("resumed_from_iteration")
    if resumed is not None:
        print(f"  resumed from checkpoint at iteration {resumed}")
    m = compute_metrics(trace)
    print(f"  behavior: <updt={m.updt:.4g}, work={m.work:.4g}, "
          f"eread={m.eread:.4g}, msg={m.msg:.4g}>")
    print(f"  activity shape: {classify_activity_shape(trace).value}")
    enforced = "yes" if trace.meta.get("timeout_enforced") else "no"
    print(f"  harness: graph_source={trace.meta.get('graph_source', '?')} "
          f"timeout_enforced={enforced}")
    if obs_state is not None:
        print(f"  telemetry: {obs_state[0]} "
              f"(inspect with `repro stats {obs_state[0]}`)")
    if args.json:
        trace.to_json(args.json)
        print(f"  trace written to {args.json}")
    return 0


def _cmd_characterize(args) -> int:
    from repro.algorithms.registry import info
    from repro.behavior.metrics import METRIC_NAMES, compute_metrics
    from repro.behavior.run import run_computation
    from repro.experiments.config import GraphSpec
    from repro.experiments.reporting import format_table

    domain = info(args.algorithm).domain
    if domain not in ("ga", "clustering", "cf"):
        print(f"error: {args.algorithm} has fixed graph structure "
              f"(domain {domain}); 'characterize' sweeps (nedges, α)",
              file=sys.stderr)
        return 2
    rows = []
    for nedges in args.sizes:
        for alpha in args.alphas:
            spec = GraphSpec.for_domain(domain, nedges=nedges, alpha=alpha,
                                        seed=args.seed)
            trace = run_computation(args.algorithm, spec)
            m = compute_metrics(trace)
            rows.append((f"{nedges:g}", alpha, trace.n_iterations,
                         *(m[name] for name in METRIC_NAMES)))
    print(format_table(["nedges", "α", "iters", *METRIC_NAMES], rows,
                       title=f"{args.algorithm}: behavior across structures"))
    return 0


#: Exit code for a build that completed but recorded unexpected
#: (non-memory) failures — distinct from argparse/usage errors.
EXIT_UNEXPECTED_FAILURES = 3
#: Exit code for a build stopped by SIGINT (128 + SIGINT, the shell
#: convention for death-by-signal).
EXIT_INTERRUPTED = 130


class _SigintGovernor:
    """Two-stage Ctrl-C for long builds.

    The first SIGINT only *requests* a stop: the build finishes its
    in-flight cells (which flush their checkpoints and land in the
    store) and comes back marked interrupted. A second SIGINT restores
    the default handler behavior by re-raising ``KeyboardInterrupt`` —
    the user insists, so abort now.
    """

    def __init__(self) -> None:
        import threading

        self._stop = threading.Event()
        self._previous = None

    def __enter__(self) -> "_SigintGovernor":
        import signal

        def handler(signum, frame):
            if self._stop.is_set():
                raise KeyboardInterrupt
            self._stop.set()
            print("\ninterrupt: no new cells will start; waiting for "
                  "in-flight cells to flush (^C again to abort now)",
                  file=sys.stderr)

        self._previous = signal.signal(signal.SIGINT, handler)
        return self

    def __exit__(self, *exc_info) -> None:
        import signal

        signal.signal(signal.SIGINT, self._previous)

    @property
    def stop_requested(self):
        return self._stop.is_set


def _cmd_corpus(args) -> int:
    from repro.experiments.corpus import build_corpus
    from repro.experiments.failures import RETRYABLE_KINDS

    progress = (lambda line: print(f"  {line}")) if args.progress else None
    with _SigintGovernor() as governor:
        corpus = build_corpus(args.profile, use_cache=not args.no_cache,
                              progress=progress, workers=args.workers,
                              timeout_s=args.timeout, retries=args.retries,
                              resume=args.resume,
                              health_policy=args.health_policy,
                              health_check_every=args.health_check_every,
                              checkpoint_dir=args.checkpoint_dir,
                              checkpoint_every=args.checkpoint_every,
                              stop_requested=governor.stop_requested,
                              use_shm=not args.no_shm,
                              graph_cache_bytes=args.graph_cache_bytes,
                              lease_timeout_s=args.lease_timeout,
                              heartbeat_every_s=args.heartbeat_every,
                              max_lease_expiries=args.max_lease_expiries,
                              speculative=args.speculative,
                              gc_quarantine=args.gc_quarantine,
                              distributed=args.distributed,
                              obs=args.obs, obs_dir=args.obs_dir)
    print(corpus.summary())
    print(f"  executed {corpus.n_executed}, cached {corpus.n_cached}")
    if corpus.interrupted:
        print("interrupted: completed cells are cached; rerun the same "
              "command to resume the build where it stopped",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    unexpected = corpus.unexpected_failures
    if unexpected:
        kinds = sorted({f.failure.kind for f in unexpected})
        if any(k in RETRYABLE_KINDS for k in kinds):
            hint = "rerun with --resume to re-execute them"
        else:
            hint = ("deterministic kinds are not retried; rerun with "
                    "--no-cache after fixing the cause")
        print(f"error: {len(unexpected)} run(s) failed unexpectedly "
              f"(kinds: {kinds}); {hint}", file=sys.stderr)
        return EXIT_UNEXPECTED_FAILURES
    return 0


def _cmd_design(args) -> int:
    from repro.behavior.space import BehaviorSpace
    from repro.ensemble.constrained import limit_to_algorithms
    from repro.ensemble.metrics import coverage, spread
    from repro.ensemble.search import best_ensemble
    from repro.experiments.corpus import build_corpus

    corpus = build_corpus(args.profile)
    vectors = corpus.vectors(scheme=args.scheme)
    if args.algorithms:
        vectors = limit_to_algorithms(vectors, args.algorithms)
    samples = BehaviorSpace().sample(args.samples, seed=0)
    result = best_ensemble(vectors, args.size, args.metric,
                           samples=samples[:4000])
    print(f"best {args.metric} ensemble of size {args.size} "
          f"(scheme={args.scheme}):")
    for member in result.ensemble:
        alg, nedges, alpha = member.tag
        print(f"  <{alg}, nedges={nedges:g}, α={alpha}>")
    print(f"spread   = {spread(result.ensemble):.4f}")
    print(f"coverage = {coverage(result.ensemble, samples=samples):.4f}")
    return 0


def _cmd_ensemble(args) -> int:
    import time

    from repro.behavior.space import BehaviorSpace
    from repro.ensemble.budgets import REPORT_SAMPLES
    from repro.ensemble.metrics import coverage, spread
    from repro.ensemble.search import best_ensemble_curve, resolve_engine
    from repro.experiments.corpus import build_corpus
    from repro.experiments.reporting import format_table

    corpus = build_corpus(args.profile)
    vectors = corpus.vectors(scheme=args.scheme)
    engine = resolve_engine(args.engine)
    kwargs: dict = dict(beam_width=args.beam_width,
                        refine=not args.no_refine,
                        engine=args.engine, strategy=args.strategy,
                        block_bytes=args.block_bytes,
                        precision=args.precision, workers=args.workers)
    if args.samples is not None:
        kwargs["n_samples"] = args.samples
    obs_state = _configure_cli_obs(args)
    try:
        start = time.perf_counter()
        curve = best_ensemble_curve(vectors, args.sizes, args.metric,
                                    **kwargs)
        wall = time.perf_counter() - start
    finally:
        _export_cli_obs(obs_state)
    # Search runs on the search budget; the table re-scores every
    # ensemble at the reporting budget so quoted numbers are stable.
    report = BehaviorSpace().sample(REPORT_SAMPLES, seed=0)
    rows = []
    for size in sorted(curve):
        res = curve[size]
        rows.append((size, f"{res.score:.6f}",
                     f"{spread(res.ensemble):.6f}",
                     f"{coverage(res.ensemble, samples=report):.6f}"))
    strategy = args.strategy or "beam"
    print(format_table(
        ["size", f"search {args.metric}", "spread", "coverage"],
        rows,
        title=f"Best {args.metric} ensembles (pool={len(vectors)}, "
              f"scheme={args.scheme}, engine={engine}, "
              f"strategy={strategy})"))
    largest = curve[max(curve)]
    print(f"members of size-{largest.ensemble.size} ensemble:")
    for member in largest.ensemble:
        alg, nedges, alpha = member.tag
        print(f"  <{alg}, nedges={nedges:g}, α={alpha}>")
    print(f"search wall: {wall:.3f}s over {len(args.sizes)} sizes")
    if obs_state is not None:
        print(f"telemetry: {obs_state[0]} "
              f"(inspect with `repro stats {obs_state[0]}`)")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    root = Path(args.artifacts)
    if not root.is_dir():
        print(f"error: no artifact directory {root} — run "
              f"'pytest benchmarks/ --benchmark-only' first",
              file=sys.stderr)
        return 1
    sections = []
    for path in sorted(root.glob("*.txt")):
        body = path.read_text(encoding="utf-8").rstrip()
        sections.append(f"## {path.stem}\n\n```\n{body}\n```")
    metadata = _run_metadata_section(args.store)
    if metadata:
        sections.append(metadata)
    document = ("# Regenerated paper artifacts\n\n"
                + "\n\n".join(sections) + "\n")
    if args.out:
        Path(args.out).write_text(document, encoding="utf-8")
        print(f"wrote {args.out} ({len(sections)} artifacts)")
    else:
        print(document)
    return 0


def _run_metadata_section(store_dir: "str | None") -> "str | None":
    """Markdown section summarizing how each cached run executed.

    Surfaces the harness facts behavior analysis ignores —
    ``graph_source`` (shm / cache / generated) and
    ``timeout_enforced`` (SIGALRM vs cooperative deadline) — so a
    report reader can judge whether runs shared inputs and whether the
    wall-clock limit was actually armed.
    """
    from repro.experiments.reporting import format_table
    from repro.experiments.results import ResultStore

    rows = []
    for trace in ResultStore(store_dir).iter_traces():
        enforced = "yes" if trace.meta.get("timeout_enforced") else "no"
        rows.append((trace.label, trace.engine, trace.n_iterations,
                     str(trace.meta.get("graph_source", "-")), enforced))
    if not rows:
        return None
    sources = sorted({row[3] for row in rows})
    table = format_table(
        ["run", "engine", "iters", "graph source", "timeout enforced"],
        sorted(rows),
        title=f"Run metadata ({len(rows)} cached traces; "
              f"graph sources: {', '.join(sources)})")
    return f"## run-metadata\n\n```\n{table}\n```"


def _cmd_stats(args) -> int:
    import json as _json

    from repro.obs.stats import render_stats, stats_payload

    if args.format == "json":
        print(_json.dumps(stats_payload(args.run_dir, node=args.node),
                          indent=2, sort_keys=True, default=str))
    else:
        print(render_stats(args.run_dir, node=args.node))
    return 0


def _trace_events(run_dir):
    from repro.obs.events import read_all_events
    from repro.obs.stats import resolve_run_dir

    return read_all_events(resolve_run_dir(run_dir))


def _cmd_trace(args) -> int:
    from repro.obs.tracing import build_span_tree, render_trace

    events = _trace_events(args.run_dir)
    print(render_trace(events, trace_id=args.trace_id, cell=args.cell,
                       max_depth=args.max_depth))
    if args.check:
        tree = build_span_tree(events, args.trace_id)
        if not tree.nodes or tree.orphans:
            return 1
    return 0


def _cmd_critical_path(args) -> int:
    import json as _json

    from repro.obs.critpath import critical_path, render_critical_path

    events = _trace_events(args.run_dir)
    if args.format == "json":
        print(_json.dumps(critical_path(events), indent=2,
                          sort_keys=True, default=str))
    else:
        print(render_critical_path(events, max_chain=args.max_chain))
    return 0


def _cmd_bench(args) -> int:
    import json as _json

    from repro.obs.benchdiff import compare_artifacts, render_bench_compare

    report = compare_artifacts(
        args.baseline, args.candidate,
        warn_pct=args.warn_pct, fail_pct=args.fail_pct,
        strict=args.strict,
        artifacts=tuple(args.artifact) if args.artifact else None)
    if args.format == "json":
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_bench_compare(report))
    return 1 if report["failed"] else 0


def _cmd_tail(args) -> int:
    import json as _json

    from repro.obs.events import follow_events, read_all_events
    from repro.obs.stats import format_event, resolve_run_dir

    obs_dir = resolve_run_dir(args.run_dir)
    render = ((lambda e: _json.dumps(e, sort_keys=True)) if args.raw
              else format_event)
    events = read_all_events(obs_dir)
    if args.node is not None:
        events = [e for e in events if e.get("node") == args.node]
    for event in events[-args.lines:]:
        print(render(event))
    if args.follow:
        try:
            for event in follow_events(obs_dir, duration_s=args.duration):
                if args.node is not None and event.get("node") != args.node:
                    continue
                print(render(event), flush=True)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_node(args) -> int:
    from repro.experiments.distqueue import DistributedQueue
    from repro.experiments.nodeagent import NodeAgent

    agent = NodeAgent(DistributedQueue(args.queue_dir),
                      workers=args.workers,
                      node=args.node_id,
                      poll_s=args.poll if args.poll is not None else 0.05,
                      idle_exit_s=args.idle_exit)
    return agent.run(manifest_wait_s=args.manifest_wait)


def _cmd_characterize_corpus(args) -> int:
    from repro.experiments.characterization import characterize_corpus
    from repro.experiments.corpus import build_corpus

    corpus = build_corpus(args.profile, workers=args.workers)
    print(characterize_corpus(corpus).report())
    return 0


_COMMANDS = {
    "algorithms": _cmd_algorithms,
    "run": _cmd_run,
    "characterize": _cmd_characterize,
    "characterize-corpus": _cmd_characterize_corpus,
    "corpus": _cmd_corpus,
    "design": _cmd_design,
    "ensemble": _cmd_ensemble,
    "report": _cmd_report,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "critical-path": _cmd_critical_path,
    "bench": _cmd_bench,
    "tail": _cmd_tail,
    "node": _cmd_node,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Report commands (trace, critical-path, stats, tail) are made
        # to be piped; a closed reader (`| head`) is not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
