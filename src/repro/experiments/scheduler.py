"""Supervised DAG scheduler for corpus builds.

The flat ``ProcessPoolExecutor`` + ``as_completed`` dispatch this
module replaces had no notion of task ownership: one
``BrokenProcessPool`` aborted the whole build and a hung worker
stalled it forever. Following the Pregel-style plan/execute/update
loop (every task carries a first-class status state machine), the
build is now an explicit DAG of **materialize → run → store** tasks
driven by a supervisor:

- **plan** — ready tasks (deps terminal, backoff elapsed) are leased
  to idle workers; each lease carries an epoch and a deadline.
- **execute** — workers heartbeat while executing (see
  :mod:`repro.experiments.worksite`); each beat tagged with the lease
  renews its deadline, so slow-but-alive cells never expire while
  dead or hung workers do.
- **update** — results transition tasks to ``done``/``failed``; an
  expired lease is revoked and the task re-dispatched with full-jitter
  backoff, resuming from its last checkpoint. After K expiries the
  cell is quarantined as ``quarantined-poison`` instead of burning a
  K+1th worker. Worker *infra* failures (deaths, expiries — not task
  failures) feed a circuit breaker that degrades the whole build to
  inline single-process execution when the crew is unhealthy.

Every transition is emitted on the existing telemetry plane.
Effectively-exactly-once store semantics come from the existing
content-addressed :class:`~repro.experiments.results.ResultStore`
keys: a revoked lease whose worker was *slow rather than dead* may
complete concurrently with its replacement, but both write the same
deterministic bytes to the same key through atomic ``os.replace``, and
the supervisor accepts the first completion and drops the rest.

The task board (:class:`TaskBoard`) is deliberately pure — no
processes, no wall clock of its own — so property tests can drive it
through randomized kill/stall/complete schedules and assert every task
reaches a terminal state.
"""

from __future__ import annotations

import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments.failures import RunFailure, full_jitter_backoff
from repro.experiments.worksite import (
    TaskEnvelope,
    WorkerContext,
    WorkerCrew,
    Worksite,
)

#: Task status state machine (the LangGraph-Pregel shape): a task is
#: planned, owned, then terminal — and never leaves a terminal state.
TASK_STATES: tuple[str, ...] = (
    "pending", "leased", "done", "failed", "quarantined",
)
TERMINAL_STATES: frozenset = frozenset({"done", "failed", "quarantined"})
_ALLOWED_TRANSITIONS: dict = {
    "pending": frozenset({"leased"}),
    "leased": frozenset({"pending", "done", "failed", "quarantined"}),
    "done": frozenset(),
    "failed": frozenset(),
    "quarantined": frozenset(),
}

#: The supervisor leases store tasks to itself under this worker id.
SUPERVISOR_WORKER = -1


class SchedulerError(RuntimeError):
    """An illegal task transition — a scheduler bug, not a task fault."""


@dataclass(frozen=True)
class Lease:
    """One grant of a task to a worker, with a renewable deadline."""

    worker: int
    epoch: int
    deadline: float
    granted_at: float
    speculative: bool = False


@dataclass
class Task:
    """One node of the build DAG."""

    id: str
    kind: str  # "materialize" | "run" | "store"
    payload: Any = None
    deps: tuple = ()
    status: str = "pending"
    leases: "list[Lease]" = field(default_factory=list)
    #: Leases lost to expiry or worker death — the poison budget.
    lease_expiries: int = 0
    #: Earliest re-dispatch time after a revoked lease (jitter backoff).
    not_before: float = 0.0
    result: Any = None
    failure: "RunFailure | None" = None
    speculated: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def find_lease(self, worker: int,
                   epoch: "int | None" = None) -> "Lease | None":
        for lease in self.leases:
            if lease.worker == worker and (epoch is None
                                           or lease.epoch == epoch):
                return lease
        return None


class TaskBoard:
    """Pure plan/lease/update state machine over the build DAG.

    All timing is injected (``now`` parameters), so the board is
    driveable from property tests without processes or sleeps. The
    supervisor is the only writer; workers talk to it through results
    and heartbeats, never through the board.
    """

    def __init__(self, *, lease_timeout_s: float = 60.0,
                 max_lease_expiries: int = 3,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 5.0,
                 on_transition: "Callable | None" = None) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if max_lease_expiries < 1:
            raise ValueError("max_lease_expiries must be >= 1")
        self.lease_timeout_s = lease_timeout_s
        self.max_lease_expiries = max_lease_expiries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.on_transition = on_transition
        self.tasks: "dict[str, Task]" = {}
        self._order: "list[str]" = []
        self._epoch = 0
        self.total_lease_expiries = 0

    # ------------------------------------------------------------------
    # DAG construction
    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        if task.id in self.tasks:
            raise SchedulerError(f"duplicate task id {task.id!r}")
        for dep in task.deps:
            if dep not in self.tasks:
                raise SchedulerError(
                    f"task {task.id!r} depends on unknown {dep!r}")
        self.tasks[task.id] = task
        self._order.append(task.id)
        return task

    def get(self, task_id: str) -> "Task | None":
        return self.tasks.get(task_id)

    # ------------------------------------------------------------------
    # Plan
    # ------------------------------------------------------------------
    def ready(self, now: float) -> "list[Task]":
        """Dispatchable tasks, in insertion order: pending, past their
        backoff gate, with every dependency terminal. (Dependencies are
        ordering edges, not success edges — a failed materialize leaves
        its cells runnable; regenerating is then the cell's own
        problem, recorded against the cell.)"""
        out = []
        for task_id in self._order:
            task = self.tasks[task_id]
            if task.status != "pending" or task.not_before > now:
                continue
            if all(self.tasks[d].terminal for d in task.deps):
                out.append(task)
        return out

    # ------------------------------------------------------------------
    # Lease
    # ------------------------------------------------------------------
    def lease(self, task_id: str, worker: int, now: float, *,
              speculative: bool = False) -> int:
        task = self._require(task_id)
        if speculative:
            if task.status != "leased":
                raise SchedulerError(
                    f"speculative lease on {task.status!r} task {task_id!r}")
            task.speculated = True
        else:
            self._transition(task, "leased", worker=worker)
        self._epoch += 1
        task.leases.append(Lease(
            worker=worker, epoch=self._epoch,
            deadline=now + self.lease_timeout_s, granted_at=now,
            speculative=speculative))
        return self._epoch

    def renew(self, worker: int, task_id: str, epoch: int,
              ts: float) -> bool:
        """Heartbeat renewal: push the matching lease's deadline out to
        ``ts + lease_timeout``. Beats for unknown/stale leases are
        ignored (the worker is executing something already revoked)."""
        task = self.tasks.get(task_id)
        if task is None or task.status != "leased":
            return False
        lease = task.find_lease(worker, epoch)
        if lease is None:
            return False
        renewed = Lease(worker=lease.worker, epoch=lease.epoch,
                        deadline=max(lease.deadline,
                                     ts + self.lease_timeout_s),
                        granted_at=lease.granted_at,
                        speculative=lease.speculative)
        task.leases[task.leases.index(lease)] = renewed
        return True

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def complete(self, task_id: str, result: Any) -> bool:
        """First completion wins: returns False (result dropped) when
        the task already reached a terminal state — the stale result of
        a revoked or speculative-loser lease. Completions from revoked
        leases of a *non-terminal* task are accepted: the store write
        they performed is byte-identical to what the replacement would
        produce, so taking the early answer only saves work."""
        task = self._require(task_id)
        if task.terminal:
            return False
        if task.status == "pending":
            # A revoked attempt finished after all: re-own then finish
            # so the machine never jumps pending -> done directly.
            self._transition(task, "leased", worker=SUPERVISOR_WORKER)
        task.result = result
        task.leases.clear()
        self._transition(task, "done")
        return True

    def fail(self, task_id: str, epoch: int, failure: RunFailure) -> bool:
        """Record a harness failure from a *live* lease. Stale failures
        (their lease was revoked) are dropped: the replacement attempt
        owns the cell's outcome now."""
        task = self._require(task_id)
        if task.terminal or task.status != "leased":
            return False
        if not any(lease.epoch == epoch for lease in task.leases):
            return False
        task.failure = failure
        task.leases.clear()
        self._transition(task, "failed", failure_kind=failure.kind)
        return True

    def expired_leases(self, now: float) -> "list[tuple[Task, Lease]]":
        """Every lease past its deadline, without revoking anything —
        the supervisor decides (it must also kill the hung worker)."""
        out = []
        for task_id in self._order:
            task = self.tasks[task_id]
            if task.status != "leased":
                continue
            for lease in list(task.leases):
                if lease.deadline < now:
                    out.append((task, lease))
        return out

    def revoke_lease(self, task: Task, lease: Lease, now: float,
                     reason: str = "lease-expired") -> str:
        """Take a lease away from its (dead or hung) worker.

        Returns what happened to the task: ``"requeued"`` (re-dispatch
        after jitter backoff), ``"quarantined"`` (poison budget spent),
        or ``"survived"`` (a speculative twin still holds a live
        lease). Already-terminal tasks return ``"stale"``.
        """
        if task.terminal:
            return "stale"
        if lease in task.leases:
            task.leases.remove(lease)
        task.lease_expiries += 1
        self.total_lease_expiries += 1
        task.failure = RunFailure(
            kind="lease-expired",
            message=(f"lease epoch {lease.epoch} on worker "
                     f"{lease.worker} lost ({reason}); "
                     f"{task.lease_expiries}/{self.max_lease_expiries} "
                     f"expiries"),
            attempts=task.lease_expiries)
        if task.leases:
            return "survived"
        if task.lease_expiries >= self.max_lease_expiries:
            task.failure = RunFailure(
                kind="quarantined-poison",
                message=(f"quarantined after {task.lease_expiries} lost "
                         f"leases (last: {reason}) — this cell kills or "
                         f"hangs every worker that touches it"),
                attempts=task.lease_expiries)
            self._transition(task, "quarantined", reason=reason)
            return "quarantined"
        backoff = full_jitter_backoff(
            self.backoff_base_s, task.lease_expiries, key=task.id,
            cap_s=self.backoff_cap_s)
        task.not_before = now + backoff
        self._transition(task, "pending", reason=reason,
                         backoff_s=backoff)
        return "requeued"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leased(self) -> "list[Task]":
        return [self.tasks[t] for t in self._order
                if self.tasks[t].status == "leased"]

    def all_terminal(self) -> bool:
        return all(t.terminal for t in self.tasks.values())

    def counts(self) -> "dict[str, int]":
        out = {state: 0 for state in TASK_STATES}
        for task in self.tasks.values():
            out[task.status] += 1
        return out

    # ------------------------------------------------------------------
    def _require(self, task_id: str) -> Task:
        task = self.tasks.get(task_id)
        if task is None:
            raise SchedulerError(f"unknown task {task_id!r}")
        return task

    def _transition(self, task: Task, new: str, **info: Any) -> None:
        old = task.status
        if new not in _ALLOWED_TRANSITIONS[old]:
            raise SchedulerError(
                f"illegal transition {old} -> {new} for task {task.id!r}")
        task.status = new
        if self.on_transition is not None:
            self.on_transition(task, old, new, info)


class CircuitBreaker:
    """Trips when worker *infra* failures dominate recent outcomes.

    Infra failures are lease expiries and worker deaths; task-level
    failures (a cell that crashes deterministically) never count —
    they are the corpus's problem, not the crew's.

    Explicit three-state machine:

    ``closed``
        Normal operation. Outcomes feed a sliding window; once there
        are enough events to judge and the failure fraction crosses
        the threshold, the breaker **trips** (latches open) — unlike
        the old live-computed window, successes arriving later cannot
        silently flip it back while the supervisor is mid-degrade.
    ``open``
        The supervisor stops trusting workers and executes inline.
        Outcomes recorded here are ignored: they come from dispatches
        made before the trip. After ``cooldown_s``, :meth:`probe_due`
        moves to half-open.
    ``half-open``
        One supervised *probe* dispatch is in flight. Its success
        closes the breaker (crew re-trusted, window reset); an infra
        failure re-trips it for another full cooldown.
    """

    def __init__(self, *, window: int = 16, min_events: int = 4,
                 threshold: float = 0.5,
                 cooldown_s: float = 30.0) -> None:
        self.window = window
        self.min_events = min_events
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.opened_at = 0.0
        self.trips = 0
        self._outcomes: deque = deque(maxlen=window)

    def record(self, infra_failure: bool, now: float = 0.0) -> None:
        if self.state == "half-open":
            # The probe's verdict decides alone; the pre-trip window
            # is stale evidence.
            if infra_failure:
                self._trip(now)
            else:
                self.close()
            return
        if self.state == "open":
            return
        self._outcomes.append(bool(infra_failure))
        n = sum(self._outcomes)
        if (n >= self.min_events
                and n / max(1, len(self._outcomes)) >= self.threshold):
            self._trip(now)

    def probe_due(self, now: float) -> bool:
        """Transition open → half-open once the cooldown elapsed.
        Returns True exactly when the transition happens — the caller
        owns dispatching the single probe."""
        if (self.state == "open"
                and now - self.opened_at >= self.cooldown_s):
            self.state = "half-open"
            return True
        return False

    def close(self) -> None:
        self.state = "closed"
        self._outcomes.clear()

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opened_at = now
        self.trips += 1
        self._outcomes.clear()

    @property
    def failures(self) -> int:
        return sum(self._outcomes)

    @property
    def open(self) -> bool:
        """True while the crew is untrusted (open or half-open)."""
        return self.state != "closed"


@dataclass(frozen=True)
class SchedulerConfig:
    """Supervisor tuning, surfaced on the CLI."""

    lease_timeout_s: float = 60.0
    heartbeat_every_s: float = 1.0
    max_lease_expiries: int = 3
    speculative: bool = False
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    breaker_window: int = 16
    breaker_min_events: int = 4
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 30.0
    poll_s: float = 0.05


class Supervisor:
    """Drives one multi-worker corpus build through the task board.

    Owns the worksite (heartbeat directory), the worker crew, and —
    when the shared-memory plane is enabled — the graph plane; fills
    the :class:`~repro.experiments.corpus.BehaviorCorpus` in plan
    order, so a supervised build's ``runs`` list is ordered exactly
    like an inline build's.
    """

    def __init__(self, *, plan: list, profile: Any, store: Any,
                 corpus: Any, workers: int, ctx: WorkerContext,
                 config: "SchedulerConfig | None" = None,
                 use_shm: bool = True, resume: bool = False,
                 progress: "Callable | None" = None,
                 stop_requested: "Callable | None" = None) -> None:
        from repro.obs.telemetry import get_telemetry

        self.plan = plan
        self.profile = profile
        self.store = store
        self.corpus = corpus
        self.workers = max(2, int(workers))
        self.ctx = ctx
        self.config = config or SchedulerConfig()
        self.use_shm = use_shm
        self.resume = resume
        self.progress = progress
        self._stop = stop_requested or (lambda: False)
        self.tel = get_telemetry()
        self.breaker = CircuitBreaker(
            window=self.config.breaker_window,
            min_events=self.config.breaker_min_events,
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s)
        #: Task id of the single half-open trial dispatch, if one is
        #: in flight; its outcome alone moves the breaker.
        self._probe_task: "str | None" = None
        self._open_handled = False
        self.board = TaskBoard(
            lease_timeout_s=self.config.lease_timeout_s,
            max_lease_expiries=self.config.max_lease_expiries,
            backoff_base_s=self.config.backoff_base_s,
            backoff_cap_s=self.config.backoff_cap_s,
            on_transition=self._emit_transition)
        self.plane = None
        self.manifests: dict = {}
        self._mat_ids: "list[str]" = []
        self._run_ids: "list[str]" = []
        self._store_ids: "list[str]" = []
        self._store_ptr = 0
        self._premat_pending = False
        self._premat_started = 0.0

    # ------------------------------------------------------------------
    # DAG construction
    # ------------------------------------------------------------------
    def _build_dag(self) -> None:
        from repro.experiments.corpus import (
            _specs_needing_materialization,
            run_cache_key,
        )
        from repro.graph import shm

        mat_for_spec: "dict[str, str]" = {}
        if self.use_shm and shm.shm_available():
            self._premat_pending = True
            needed = _specs_needing_materialization(
                self.plan, self.profile, self.store, self.resume)
            if needed:
                self.plane = shm.GraphPlane()
            for spec_key, spec in needed.items():
                task_id = f"materialize:{spec_key}"
                self.board.add(Task(task_id, "materialize", payload=spec))
                mat_for_spec[spec_key] = task_id
                self._mat_ids.append(task_id)
        prev_store: "str | None" = None
        for planned in self.plan:
            cell_key = run_cache_key(planned, self.profile)
            run_id = f"run:{cell_key}"
            deps = []
            mat_id = mat_for_spec.get(planned.spec.cache_key())
            if mat_id is not None:
                deps.append(mat_id)
            self.board.add(Task(run_id, "run", payload=planned,
                                deps=tuple(deps)))
            # The store chain linearizes collection in plan order, so
            # corpus.runs ordering is deterministic and identical to an
            # inline build regardless of completion order.
            store_id = f"store:{cell_key}"
            store_deps = [run_id]
            if prev_store is not None:
                store_deps.append(prev_store)
            self.board.add(Task(store_id, "store", payload=planned,
                                deps=tuple(store_deps)))
            prev_store = store_id
            self._run_ids.append(run_id)
            self._store_ids.append(store_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        self._premat_started = time.perf_counter()
        self._build_dag()
        site = Worksite(tempfile.mkdtemp(prefix="repro-worksite-"))
        crew = WorkerCrew(self.workers, site, self.ctx,
                          self.config.heartbeat_every_s)
        stopping = False
        polite = False
        try:
            while True:
                now = time.time()
                if not stopping and self._stop():
                    stopping = True
                for beat in site.read_heartbeats().values():
                    if beat.task_id is not None:
                        self.board.renew(beat.worker, beat.task_id,
                                         beat.epoch, beat.ts)
                for handle in crew.dead_workers():
                    self._on_worker_death(crew, handle, now, stopping)
                for task, lease in self.board.expired_leases(now):
                    self._on_lease_expiry(crew, task, lease, now,
                                          stopping)
                if not stopping:
                    if self.breaker.open:
                        self._degraded_tick(crew, now)
                    else:
                        self._dispatch_ready(crew, now)
                        if self.config.speculative:
                            self._maybe_speculate(crew, now)
                self._check_premat_done()
                if not stopping:
                    self._finalize_stores()
                if self.board.all_terminal():
                    polite = True
                    break
                if stopping and not self._worker_leases_live():
                    polite = True
                    break
                envelope = crew.poll_result(self.config.poll_s)
                while envelope is not None:
                    self._on_result(crew, envelope)
                    envelope = crew.poll_result(0.0)
        finally:
            busy = any(not h.idle for h in crew.workers.values())
            crew.shutdown(kill=not polite or busy)
            site.cleanup()
            self.corpus.workers_replaced = crew.replaced
            self.corpus.lease_expiries = self.board.total_lease_expiries
            if stopping:
                self.corpus.interrupted = True
            if self.plane is not None:
                # After the crew is down no process can still be
                # attached; unlink every published segment (also on
                # the SIGINT and exception paths).
                self.plane.close()
                self.plane = None

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_worker_death(self, crew: WorkerCrew, handle, now: float,
                         stopping: bool) -> None:
        task = (self.board.get(handle.task_id)
                if handle.task_id is not None else None)
        lease = (task.find_lease(handle.worker) if task is not None
                 else None)
        self._record_outcome(crew, handle.task_id, True, now)
        if self.tel.enabled:
            self.tel.inc("scheduler_worker_deaths_total")
            self.tel.emit("scheduler", action="worker-died",
                          worker=handle.worker,
                          task=handle.task_id)
        if task is not None and lease is not None and not task.terminal:
            self.board.revoke_lease(task, lease, now,
                                    reason="worker-died")
        if not stopping and not self.breaker.open:
            crew.replace(handle)
        else:
            crew.remove(handle)

    def _on_lease_expiry(self, crew: WorkerCrew, task: Task,
                         lease: Lease, now: float,
                         stopping: bool) -> None:
        outcome = self.board.revoke_lease(task, lease, now,
                                          reason="lease-expired")
        if outcome == "stale":
            return
        self._record_outcome(crew, task.id, True, now)
        if self.tel.enabled:
            self.tel.inc("scheduler_lease_expiries_total")
            self.tel.emit("scheduler", action="lease-expired",
                          task=task.id, worker=lease.worker,
                          epoch=lease.epoch, outcome=outcome,
                          failure_kind="lease-expired",
                          expiries=task.lease_expiries)
        # The worker holding the lease is hung (a dead one was already
        # reaped by _on_worker_death): kill it, replace it.
        handle = crew.workers.get(lease.worker)
        if handle is not None:
            crew.kill(handle)
            if not stopping and not self.breaker.open:
                crew.spawn()
                crew.replaced += 1

    def _on_result(self, crew: WorkerCrew, envelope) -> None:
        crew.mark_idle(envelope.worker)
        self._record_outcome(crew, envelope.task_id, False, time.time())
        task = self.board.get(envelope.task_id)
        if task is None:
            return
        if not envelope.ok:
            self.board.fail(task.id, envelope.epoch, envelope.error)
            return
        if task.kind == "materialize":
            self._publish_materialized(envelope.value)
            self.board.complete(task.id, None)
            return
        accepted = self.board.complete(task.id, envelope.value)
        if not accepted and self.tel.enabled:
            self.tel.emit("scheduler", action="stale-result",
                          task=task.id, worker=envelope.worker)

    def _publish_materialized(self, value) -> None:
        from repro.graph import shm

        if self.plane is None or value is None:
            return
        spec_key, problem = value
        if not shm.publishable(problem):
            return
        try:
            self.manifests[spec_key] = self.plane.publish(spec_key,
                                                          problem)
        except Exception:
            # Plane-level fault (shm exhausted, ...): fall back to
            # per-process materialization for everything.
            self.plane.close()
            self.plane = None
            self.manifests = {}

    # ------------------------------------------------------------------
    # Dispatch / speculation
    # ------------------------------------------------------------------
    def _dispatch_ready(self, crew: WorkerCrew, now: float) -> None:
        idle = crew.idle_workers()
        if not idle:
            return
        for task in self.board.ready(now):
            if not idle:
                break
            if task.kind == "store":
                continue  # supervisor-executed, never leased out
            handle = idle.pop()
            epoch = self.board.lease(task.id, handle.worker, now)
            crew.dispatch(handle, TaskEnvelope(
                task.id, epoch, task.kind, self._payload_for(task)))

    def _maybe_speculate(self, crew: WorkerCrew, now: float) -> None:
        """Bounded speculative re-execution of stragglers: only when
        nothing else is dispatchable (i.e. near build end), one shadow
        per task, first completion wins."""
        idle = crew.idle_workers()
        if not idle:
            return
        if any(t.kind != "store" for t in self.board.ready(now)):
            return
        candidates = [
            t for t in self.board.leased()
            if t.kind == "run" and not t.speculated
            and len(t.leases) == 1
            and now - t.leases[0].granted_at
            > max(self.config.heartbeat_every_s, self.config.poll_s)
        ]
        candidates.sort(key=lambda t: t.leases[0].granted_at)
        for handle, task in zip(idle, candidates):
            epoch = self.board.lease(task.id, handle.worker, now,
                                     speculative=True)
            crew.dispatch(handle, TaskEnvelope(
                task.id, epoch, task.kind, self._payload_for(task)))
            self.corpus.speculative_runs += 1
            if self.tel.enabled:
                self.tel.inc("scheduler_speculative_total")
                self.tel.emit("scheduler", action="speculate",
                              task=task.id, worker=handle.worker)

    def _payload_for(self, task: Task):
        if task.kind == "materialize":
            return (task.payload, None)
        manifest = self.manifests.get(task.payload.spec.cache_key())
        return (task.payload, manifest)

    # ------------------------------------------------------------------
    # Collection (store tasks, plan order)
    # ------------------------------------------------------------------
    def _finalize_stores(self) -> None:
        from repro.experiments.corpus import (
            format_progress,
            progress_event,
        )

        total = len(self.plan)
        while self._store_ptr < total:
            run_task = self.board.get(self._run_ids[self._store_ptr])
            if not run_task.terminal:
                break
            store_task = self.board.get(self._store_ids[self._store_ptr])
            run = self._corpus_run_for(run_task)
            if run.obs_snapshot is not None:
                self.tel.merge_snapshot(run.obs_snapshot)
                run.obs_snapshot = None
            if run.ok:
                self.corpus.runs.append(run)
            else:
                self.corpus.failures.append(run)
            now = time.time()
            self.board.lease(store_task.id, SUPERVISOR_WORKER, now)
            self.board.complete(store_task.id, None)
            self._store_ptr += 1
            event = progress_event(run, self._store_ptr, total)
            self.tel.emit("progress", **event)
            if self.progress is not None:
                self.progress(format_progress(event))

    def _corpus_run_for(self, run_task: Task):
        from repro.experiments.corpus import CorpusRun, run_cache_key

        planned = run_task.payload
        if run_task.status == "done":
            return run_task.result
        failure = run_task.failure or RunFailure(
            kind="crash", message="task lost without a recorded failure")
        if run_task.status == "quarantined" and self.store is not None:
            # Persist the poison verdict so resumed builds replay it
            # (quarantined-poison is not retryable) instead of feeding
            # the cell to a fresh crew.
            self.store.save_failure(
                run_cache_key(planned, self.profile), failure)
        return CorpusRun(planned.algorithm, planned.spec, None, None,
                         failure=failure)

    # ------------------------------------------------------------------
    # Premat bookkeeping
    # ------------------------------------------------------------------
    def _check_premat_done(self) -> None:
        if not self._premat_pending:
            return
        if not all(self.board.get(t).terminal for t in self._mat_ids):
            return
        self._premat_pending = False
        self.corpus.graph_plane = self.plane is not None
        self.corpus.premat_graphs = len(self.manifests)
        self.corpus.premat_seconds = (time.perf_counter()
                                      - self._premat_started)
        self.tel.emit("premat", graphs=len(self.manifests),
                      seconds=self.corpus.premat_seconds,
                      plane=self.plane is not None)

    def _worker_leases_live(self) -> bool:
        """Any lease still held by an actual worker (store-task
        self-leases never block the stopping drain)."""
        return any(
            any(lease.worker != SUPERVISOR_WORKER for lease in t.leases)
            for t in self.board.leased())

    # ------------------------------------------------------------------
    # Circuit-breaker degradation (open → half-open probe → close)
    # ------------------------------------------------------------------
    def _record_outcome(self, crew: WorkerCrew, task_id: "str | None",
                        infra_failure: bool, now: float) -> None:
        """Feed the breaker. While it is open or half-open only the
        probe dispatch counts as evidence — stray results and deaths
        from pre-trip dispatches must not decide the crew's fate."""
        if self.breaker.state == "closed":
            self.breaker.record(infra_failure, now)
            return
        if task_id is None or task_id != self._probe_task:
            return
        self._probe_task = None
        self.breaker.record(infra_failure, now)
        if self.tel.enabled:
            self.tel.emit("scheduler", action="probe-result",
                          task=task_id, ok=not infra_failure,
                          state=self.breaker.state)
        if not self.breaker.open:
            self._open_handled = False
            self._on_breaker_close(crew)

    def _on_breaker_close(self, crew: WorkerCrew) -> None:
        """Probe succeeded: re-trust the crew and refill it."""
        if self.tel.enabled:
            self.tel.inc("scheduler_circuit_closes_total")
            self.tel.emit("scheduler", action="circuit-close",
                          trips=self.breaker.trips)
        while len(crew.workers) < self.workers:
            crew.spawn()

    def _degraded_tick(self, crew: WorkerCrew, now: float) -> None:
        """One loop iteration while the crew is untrusted: execute one
        cell inline in this process (where no lease can expire), and
        once the cooldown elapses trial a single supervised dispatch
        instead of staying inline for the rest of the build.
        Quarantined cells stay quarantined — the breaker protects the
        build, not poison."""
        if not self._open_handled:
            self._open_handled = True
            self.corpus.degraded_to_inline = True
            # Pre-trip leases belong to workers we no longer trust;
            # revoke them so their tasks are inline-executable (the
            # poison budget charge matches worker-death semantics).
            for task in self.board.leased():
                for lease in list(task.leases):
                    if lease.worker != SUPERVISOR_WORKER:
                        self.board.revoke_lease(task, lease, now,
                                                reason="circuit-open")
            if self.tel.enabled:
                self.tel.inc("scheduler_circuit_trips_total")
                self.tel.emit("scheduler", action="circuit-open",
                              trips=self.breaker.trips)
        if self.breaker.probe_due(now):
            self._dispatch_probe(crew, now)
        self._inline_step(now)

    def _dispatch_probe(self, crew: WorkerCrew, now: float) -> None:
        candidates = [t for t in self.board.ready(now)
                      if t.kind != "store"]
        if not candidates:
            # Nothing left to trial the crew on; the inline path
            # finishes the tail and the breaker stays half-open.
            return
        idle = crew.idle_workers()
        handle = idle.pop() if idle else crew.spawn()
        task = candidates[0]
        epoch = self.board.lease(task.id, handle.worker, now)
        self._probe_task = task.id
        crew.dispatch(handle, TaskEnvelope(
            task.id, epoch, task.kind, self._payload_for(task)))
        if self.tel.enabled:
            self.tel.inc("scheduler_probes_total")
            self.tel.emit("scheduler", action="half-open-probe",
                          task=task.id, worker=handle.worker)

    def _inline_step(self, now: float) -> None:
        """Execute at most one ready task inline per tick, keeping the
        loop responsive to probe results and stop requests."""
        from repro.experiments.corpus import _isolated_execute

        for task in self.board.ready(now):
            if task.kind == "store" or task.id == self._probe_task:
                continue
            self.board.lease(task.id, SUPERVISOR_WORKER, now)
            if task.kind == "materialize":
                # Inline execution re-materializes per cell from the
                # local graph cache; no plane publish needed.
                self.board.complete(task.id, None)
                return
            run = _isolated_execute(
                task.payload, self.profile, self.store,
                self.ctx.timeout_s, self.ctx.retries, self.ctx.resume,
                self.ctx.health_policy, self.ctx.health_check_every,
                self.ctx.checkpoint_dir, self.ctx.checkpoint_every)
            self.board.complete(task.id, run)
            return

    # ------------------------------------------------------------------
    def _emit_transition(self, task: Task, old: str, new: str,
                         info: dict) -> None:
        if not self.tel.enabled:
            return
        self.tel.inc("scheduler_transitions_total", to=new)
        # Every transition of one task shares a deterministic span
        # (child of the build span, keyed by task id), so lease /
        # revoke / re-dispatch cycles thread onto one trace node.
        ctx = (self.tel.trace.child("task", task.id)
               if self.tel.trace is not None else None)
        self.tel.emit("task", _trace_ctx=ctx, task=task.id,
                      task_kind=task.kind,
                      **{"from": old, "to": new}, **info)
