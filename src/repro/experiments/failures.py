"""Structured failure taxonomy for corpus execution.

The paper reports partial failure as a first-class outcome ("5 runs of
AD with largest graph size failed"), and SoK-style audits of graph
benchmarks show that harnesses which collapse every fault into one
opaque string — or worse, abort the whole matrix — produce untrustworthy
corpora. Every failed cell is therefore recorded as a
:class:`RunFailure` with a machine-readable *kind*:

``memory``
    The run exceeded the engine memory budget
    (:class:`~repro._util.errors.ResourceLimitError`). Deterministic and
    *expected* — this is the paper's AD-at-largest-size failure mode —
    so it is never retried and does not fail the build.
``timeout``
    The run exceeded its wall-clock limit
    (:class:`~repro._util.errors.RunTimeoutError`). Possibly transient
    (machine load), so eligible for retry.
``numeric``
    The run produced numerically invalid data: a NaN in vertex state or
    a counter (:class:`~repro._util.errors.NumericError`), or a
    completed trace that violated a structural invariant
    (:class:`~repro._util.errors.TraceInvariantError`). Deterministic —
    the same inputs corrupt the same way — so never retried, and always
    *unexpected*: a numeric fault means the engine or an algorithm is
    wrong, not that the experiment legitimately exceeded a budget.
``nonconvergence``
    A convergence watchdog fired under the ``strict`` health policy —
    the run stalled, oscillated, or diverged
    (:class:`~repro._util.errors.ConvergenceError` and its
    :class:`~repro._util.errors.NonConvergenceError` subclass).
    Deterministic, never retried, unexpected.
``crash``
    Any other exception escaping the run. Isolated to its cell, recorded
    with the full traceback, eligible for retry, and reported as an
    *unexpected* failure (nonzero CLI exit).
``cache-corrupt``
    A result-store entry was corrupt and could not be quarantined
    (:class:`~repro._util.errors.CacheCorruptError`). Ordinary
    corruption never produces this: the store quarantines the bad file
    and the runner silently re-executes the cell.
``lease-expired``
    A scheduler lease on the cell expired: the worker holding it was
    killed, hung, or stopped heartbeating
    (:mod:`repro.experiments.scheduler`). An *infra* fault, not a cell
    fault — retryable, and the re-dispatched attempt resumes from the
    cell's last checkpoint.
``quarantined-poison``
    The cell burned through its lease-expiry budget (K expiries across
    distinct workers), so the supervisor quarantined it instead of
    retrying forever — the signature of a poison cell that kills or
    hangs whatever worker touches it. Never retried, always
    *unexpected* (nonzero CLI exit).
``disk-io``
    A transient I/O fault (``EIO``, ``ENOSPC``, ``ESTALE``) while
    publishing to the result or snapshot store — the classic NFS /
    full-scratch-volume hiccup of multi-node builds on a shared
    filesystem. Retryable with bounded jittered retries at the publish
    site (:func:`retry_transient_disk`); the errno name is preserved in
    the message so operators can tell a flaky mount from a full disk.
"""

from __future__ import annotations

import errno as _errno
import hashlib
import random
import time
import traceback as _traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro._util.errors import (
    CacheCorruptError,
    ConvergenceError,
    NumericError,
    ResourceLimitError,
    RunTimeoutError,
    TraceInvariantError,
    ValidationError,
)

#: Every legal failure kind, in severity order.
FAILURE_KINDS: tuple[str, ...] = (
    "memory", "timeout", "numeric", "nonconvergence", "crash",
    "cache-corrupt", "lease-expired", "quarantined-poison", "disk-io",
)

#: OSError errnos treated as transient disk faults. EIO and ESTALE are
#: the flaky-mount signatures; ENOSPC is retryable because quarantine
#: sweeps and log rotation free space concurrently with a build.
TRANSIENT_DISK_ERRNOS: frozenset = frozenset({
    _errno.EIO, _errno.ENOSPC, _errno.ESTALE,
})

#: Kinds worth retrying (possibly transient). ``memory`` is excluded:
#: the budget check is deterministic, so re-running cannot succeed.
#: ``numeric`` and ``nonconvergence`` are excluded for the same reason —
#: the engines are deterministic, so a NaN or a stall reproduces
#: identically on retry. ``quarantined-poison`` is the *decision* to
#: stop retrying, so by construction it is not retryable.
RETRYABLE_KINDS: frozenset = frozenset({"timeout", "crash", "cache-corrupt",
                                        "lease-expired", "disk-io"})

#: Kinds that are part of the reproduced experiment rather than harness
#: faults; builds containing only these still exit 0.
EXPECTED_KINDS: frozenset = frozenset({"memory"})


def full_jitter_backoff(base_s: float, attempt: int, *,
                        key: str = "", cap_s: float = 30.0) -> float:
    """Full-jitter exponential backoff delay for retry ``attempt``.

    Deterministic retry backoff makes simultaneously failing workers
    retry in lockstep — after a shared-resource hiccup every affected
    cell hammers the resource again at the same instant. Full jitter
    (``U(0, min(cap, base * 2^(attempt-1)))``) decorrelates them while
    keeping the expected delay on the exponential envelope.

    The draw is seeded from ``(key, attempt)`` rather than global RNG
    state, so one cell's retry schedule is reproducible run-to-run
    (the corpus stays deterministic) while *different* cells — distinct
    cache keys — land at uncorrelated offsets. ``attempt`` counts from
    1 (the first retry waits at most ``base_s``).
    """
    if base_s <= 0 or attempt < 1:
        return 0.0
    ceiling = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    seed = int.from_bytes(
        hashlib.blake2b(f"{key}:{attempt}".encode("utf-8"),
                        digest_size=8).digest(), "big")
    return random.Random(seed).uniform(0.0, ceiling)


def classify_exception(exc: BaseException) -> str:
    """Map an exception to its failure kind."""
    if isinstance(exc, ResourceLimitError):
        return "memory"
    if isinstance(exc, RunTimeoutError):
        return "timeout"
    if isinstance(exc, (NumericError, TraceInvariantError)):
        return "numeric"
    if isinstance(exc, ConvergenceError):
        return "nonconvergence"
    if isinstance(exc, CacheCorruptError):
        return "cache-corrupt"
    if (isinstance(exc, OSError)
            and exc.errno in TRANSIENT_DISK_ERRNOS):
        return "disk-io"
    return "crash"


def retry_transient_disk(fn: "Callable[[], Any]", *, key: str,
                         retries: int = 3, base_s: float = 0.02,
                         cap_s: float = 0.5,
                         sleep: "Callable[[float], None]" = time.sleep,
                         on_retry: "Callable | None" = None) -> Any:
    """Run ``fn`` with bounded jittered retries on transient disk I/O.

    Only :class:`OSError` with an errno in :data:`TRANSIENT_DISK_ERRNOS`
    is retried; anything else propagates immediately. After the retry
    budget is spent the last error propagates and the caller's normal
    failure path classifies it as ``disk-io`` (retryable at the cell
    level), with the errno preserved in the message. ``on_retry`` is
    called as ``on_retry(exc, attempt, delay_s)`` before each sleep so
    publish sites can count/emit without this module importing
    telemetry.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except OSError as exc:
            if exc.errno not in TRANSIENT_DISK_ERRNOS:
                raise
            attempt += 1
            if attempt > retries:
                raise
            delay = full_jitter_backoff(base_s, attempt,
                                        key=f"disk:{key}", cap_s=cap_s)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if delay > 0:
                sleep(delay)


@dataclass(frozen=True)
class RunFailure:
    """One failed corpus cell: kind, message, raw traceback, attempts."""

    kind: str
    message: str
    traceback: str = ""
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValidationError(
                f"unknown failure kind {self.kind!r}; "
                f"expected one of {FAILURE_KINDS}"
            )
        if self.attempts < 1:
            raise ValidationError("attempts must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_exception(cls, exc: BaseException, *,
                       attempts: int = 1) -> "RunFailure":
        """Classify ``exc`` and capture its traceback."""
        kind = classify_exception(exc)
        message = str(exc) or type(exc).__name__
        if kind == "disk-io":
            code = _errno.errorcode.get(
                getattr(exc, "errno", -1), str(getattr(exc, "errno", "?")))
            message = f"errno={code}: {message}"
        return cls(
            kind=kind,
            message=message,
            traceback="".join(_traceback.format_exception(exc)),
            attempts=attempts,
        )

    @property
    def expected(self) -> bool:
        """True for failures that are part of the reproduced experiment
        (the paper's out-of-budget AD runs) rather than harness faults."""
        return self.kind in EXPECTED_KINDS

    @property
    def retryable(self) -> bool:
        return self.kind in RETRYABLE_KINDS

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "traceback": self.traceback, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        """Build from a stored record; tolerates the legacy
        ``{"reason": ...}`` format (which only ever recorded
        memory-budget failures)."""
        if "kind" not in data and "reason" in data:
            return cls(kind="memory", message=str(data["reason"]))
        return cls(
            kind=str(data.get("kind", "crash")),
            message=str(data.get("message", "unknown failure")),
            traceback=str(data.get("traceback", "")),
            attempts=int(data.get("attempts", 1)),
        )

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"
