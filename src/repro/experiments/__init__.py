"""Experiment harness: the paper's Table-2 matrix, run execution with
caching, corpus assembly, and report formatting for every table/figure."""

from repro.experiments.config import (
    PROFILES,
    ExperimentMatrix,
    GraphSpec,
    Profile,
    get_profile,
)
from repro.experiments.failures import (
    FAILURE_KINDS,
    RETRYABLE_KINDS,
    RunFailure,
)
from repro.experiments.results import ResultStore

_LAZY = {"BehaviorCorpus", "build_corpus", "CorpusRun", "execute_planned_run"}
_LAZY_CHARACTERIZATION = {"CorpusCharacterization", "characterize_corpus"}
_LAZY_SCHEDULER = {"CircuitBreaker", "SchedulerConfig", "Supervisor",
                   "Task", "TaskBoard"}


def __getattr__(name: str):
    # Corpus symbols are loaded lazily: repro.experiments.corpus imports
    # repro.behavior.run, which imports this package's config module —
    # an eager import here would close that cycle during bootstrap.
    if name in _LAZY:
        from repro.experiments import corpus

        return getattr(corpus, name)
    if name in _LAZY_CHARACTERIZATION:
        from repro.experiments import characterization

        return getattr(characterization, name)
    if name in _LAZY_SCHEDULER:
        from repro.experiments import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BehaviorCorpus",
    "CircuitBreaker",
    "ExperimentMatrix",
    "FAILURE_KINDS",
    "GraphSpec",
    "PROFILES",
    "Profile",
    "RETRYABLE_KINDS",
    "ResultStore",
    "RunFailure",
    "SchedulerConfig",
    "Supervisor",
    "Task",
    "TaskBoard",
    "build_corpus",
    "get_profile",
]
