"""Node agent: one machine's worker of the distributed corpus queue.

An agent is the per-node half of :mod:`repro.experiments.distqueue`:
it registers in the queue's node directory with heartbeat files, pulls
tasks by atomic claim, executes them through the existing
:class:`~repro.experiments.worksite.WorkerCrew` / checkpoint / shm
machinery, and publishes outcomes into the shared
:class:`~repro.experiments.results.ResultStore` behind an epoch fence
check.

Internally the agent *reuses the PR 7 TaskBoard state machine* for its
local crew: every claimed queue task becomes a board task, leased to a
worker with a heartbeat-renewed deadline, so local worker deaths and
hangs are handled exactly as in the single-node supervisor (revoke,
respawn, re-dispatch; a local poison budget quarantines the cell).
Queue-level epochs (fencing between *nodes*) and board-level epochs
(lease matching between the agent and its *workers*) are deliberately
separate counters: the first survives on disk across node deaths, the
second lives only as long as the agent.

Two things make an agent safe to kill at any instruction:

- Its workers never write the shared store (``ctx.store_root=None``);
  all publication happens in the agent's fence-checked
  :func:`~repro.experiments.distqueue.publish_result` path, so a
  revoked node can never clobber the replacement's outcome with a
  non-deterministic failure record.
- Its crew workers arm ``PR_SET_PDEATHSIG`` (see
  :mod:`repro.experiments.worksite`), so a SIGKILLed agent takes its
  workers with it instead of orphaning them; its shm segment names
  travel in every node heartbeat, so the coordinator can reap what
  ``atexit`` never got to run.

Chaos hooks (``REPRO_INJECT_NODE_KILL``, ``REPRO_INJECT_NODE_FREEZE``)
promote the worker-level kill/stall injections one level up: SIGKILL
the whole agent right after it claims a matching task, or freeze its
heartbeats past the node lease timeout and let it wake into its own
fence — the two partition behaviors the acceptance chaos run must
converge through.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from repro.experiments.distqueue import (
    Claim,
    DistributedQueue,
    TaskRecord,
    profile_from_dict,
    publish_result,
)
from repro.experiments.failures import RunFailure
from repro.experiments.scheduler import Task, TaskBoard
from repro.experiments.worksite import (
    TaskEnvelope,
    WorkerContext,
    WorkerCrew,
    Worksite,
)

#: ``"<substring|*>:<count>"`` — SIGKILL this *entire agent process*
#: right after it dispatches a claimed run task whose id contains the
#: substring (``*`` matches any). Fires once per process; ignored by
#: the coordinator's embedded agent. This is the "node dies mid-lease"
#: partition the fence/requeue path must absorb.
INJECT_NODE_KILL_ENV = "REPRO_INJECT_NODE_KILL"
#: ``"<substring|*>:<seconds>"`` — on receiving a matching run result,
#: suspend node heartbeats and sleep that long *before* publishing,
#: simulating a node frozen past its lease that later wakes. The
#: publish then trips the fence check: rejected, counted, logged.
INJECT_NODE_FREEZE_ENV = "REPRO_INJECT_NODE_FREEZE"

_injected_kill = False
_injected_freeze = False


def _parse_injection(env: str) -> "tuple[str, float] | None":
    spec = os.environ.get(env)
    if not spec or ":" not in spec:
        return None
    pattern, _, amount = spec.rpartition(":")
    try:
        return pattern, float(amount)
    except ValueError:
        return None


def default_node_id() -> str:
    host = "".join(c if c.isalnum() or c in "-_" else "-"
                   for c in socket.gethostname()) or "node"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _NodeBeatDaemon:
    """Daemon thread writing the agent's registry heartbeat.

    Mirrors :class:`~repro.experiments.worksite.HeartbeatWriter` one
    level up — including ``suspend()``, which the freeze injection uses
    to make the whole node go dark without dying.
    """

    def __init__(self, agent: "NodeAgent", every_s: float) -> None:
        self.agent = agent
        self.every_s = max(0.05, float(every_s))
        self._suspended = False
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def start(self) -> None:
        self.beat()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"nodebeat-{self.agent.node}")
        self._thread.start()

    def suspend(self) -> None:
        self._suspended = True

    def resume(self) -> None:
        self._suspended = False
        self.beat()

    def beat(self, *, done: bool = False) -> None:
        if self._suspended and not done:
            return
        try:
            self.agent.queue.write_beat(self.agent.node,
                                        self.agent._beat_payload(done))
        except OSError:
            pass  # queue swept or unreachable; next beat retries

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._stop.wait(self.every_s):
            self.beat()


class NodeAgent:
    """Pull-execute-publish loop for one node of a distributed build.

    Tick-driven so the coordinator can embed one in its own process
    (``embedded=True``) and drive it from the supervision loop — a
    build with zero peer nodes then degrades gracefully to exactly the
    single-node shape. Standalone agents (the ``repro node`` CLI) wrap
    the same ticks in :meth:`run`.
    """

    def __init__(self, queue: DistributedQueue, *, workers: int = 1,
                 manifest: "dict | None" = None,
                 node: "str | None" = None, embedded: bool = False,
                 poll_s: float = 0.05,
                 idle_exit_s: "float | None" = None) -> None:
        self.queue = queue
        self.workers = max(1, int(workers))
        self.manifest = manifest
        self.node = node or ("coordinator" if embedded
                             else default_node_id())
        self.embedded = embedded
        self.poll_s = float(poll_s)
        self.idle_exit_s = idle_exit_s
        self.stale_rejections = 0
        self._board: "TaskBoard | None" = None
        self._crew: "WorkerCrew | None" = None
        self._site: "Worksite | None" = None
        self._beats: "_NodeBeatDaemon | None" = None
        self._plane = None
        self._manifests: dict = {}
        self._claims: "dict[str, Claim]" = {}
        self._records: "dict[str, TaskRecord]" = {}
        self._queue_epoch = 0
        self._mat_for_spec: "dict[str, str]" = {}
        self._stopping = False
        self._started = False
        self._last_activity = time.monotonic()
        self._owns_obs = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        from repro.experiments.results import ResultStore
        from repro.obs.telemetry import get_telemetry

        if self.manifest is None:
            self.manifest = self.queue.read_manifest()
        if self.manifest is None:
            raise RuntimeError(
                f"no build manifest in queue {self.queue.root}")
        self.queue.ensure_layout()
        m = self.manifest
        profile = m["profile"]
        self.profile = (profile_from_dict(profile)
                        if isinstance(profile, dict) else profile)
        self.store = ResultStore(m["store_root"])
        self._configure_obs(m)
        self.tel = get_telemetry()
        lease_timeout = float(m.get("lease_timeout_s") or 15.0)
        heartbeat_every = float(m.get("heartbeat_every_s") or 1.0)
        self._board = TaskBoard(
            lease_timeout_s=lease_timeout,
            max_lease_expiries=int(m.get("max_lease_expiries") or 3),
            backoff_base_s=float(m.get("backoff_base_s") or 0.05),
            on_transition=self._emit_transition)
        # Workers never touch the shared store: all publication funnels
        # through the agent's fence-checked path.
        ctx = WorkerContext(
            store_root=None, profile=self.profile,
            timeout_s=m.get("timeout_s"), retries=m.get("retries"),
            resume=bool(m.get("resume")),
            health_policy=m.get("health_policy"),
            health_check_every=m.get("health_check_every"),
            checkpoint_dir=m.get("checkpoint_dir"),
            checkpoint_every=m.get("checkpoint_every"),
            graph_cache_bytes=m.get("graph_cache_bytes"),
            obs_level=m.get("obs_level"), obs_dir=m.get("obs_dir"),
            run_id=m.get("run_id"), node=self.node,
            trace=m.get("trace"))
        self._site = Worksite(self.queue.node_workdir(self.node))
        self._crew = WorkerCrew(self.workers, self._site, ctx,
                                heartbeat_every)
        self._use_shm = bool(m.get("use_shm", True))
        self._beats = _NodeBeatDaemon(self, heartbeat_every)
        self._beats.start()
        self._started = True
        if self.tel.enabled:
            self.tel.emit("node", _trace_ctx=self._node_ctx(),
                          action="start", workers=self.workers,
                          embedded=self.embedded)

    def _configure_obs(self, m: dict) -> None:
        """Standalone agents own their telemetry, writing a per-node
        event sink + metrics snapshot that the coordinator's end-of-
        build merge folds in; the embedded agent rides the coordinator
        process's already-configured registry."""
        from repro.obs.events import node_sink_path
        from repro.obs.telemetry import configure, get_telemetry

        from repro.obs.tracing import TraceContext

        level = m.get("obs_level")
        obs_dir = m.get("obs_dir")
        trace = TraceContext.from_dict(m.get("trace"))
        if self.embedded or not level or level == "off" or not obs_dir:
            tel = get_telemetry()
            tel.set_node(self.node)
            if trace is not None:
                tel.set_trace(trace)
            return
        configure(level, run_id=m.get("run_id"),
                  events_path=node_sink_path(obs_dir, self.node))
        tel = get_telemetry()
        tel.set_node(self.node)
        # The manifest carries the coordinator's root context: cell
        # spans executed on this node derive the same deterministic
        # ids as anywhere else, so re-dispatches across nodes re-link.
        tel.set_trace(trace)
        self._owns_obs = True

    def _beat_payload(self, done: bool = False) -> dict:
        segments = []
        if self._plane is not None:
            segments = [mf.segment for mf in self._plane.manifests.values()]
        return {
            "epoch": self._queue_epoch,
            "tasks": sorted(self._claims),
            "stale_rejections": self.stale_rejections,
            "segments": segments,
            "done": done,
        }

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One supervision round; cheap when nothing happened."""
        if not self._started or self._stopping:
            return
        board, crew, site = self._board, self._crew, self._site
        now = time.time()
        try:
            for beat in site.read_heartbeats().values():
                if beat.task_id is not None:
                    board.renew(beat.worker, beat.task_id, beat.epoch,
                                beat.ts)
            for handle in crew.dead_workers():
                self._on_worker_death(handle, now)
            for task, lease in board.expired_leases(now):
                self._on_local_expiry(task, lease, now)
            if not self.queue.complete():
                self._claim_pending()
            self._dispatch_ready(now)
            envelope = crew.poll_result(0.0)
            while envelope is not None:
                self._on_result(envelope)
                envelope = crew.poll_result(0.0)
        except OSError:
            # The queue root vanished under us (swept after completion,
            # or the shared filesystem went away): nothing left to do.
            self._stopping = True

    @property
    def drained(self) -> bool:
        """True when every claimed task reached a terminal state."""
        return not self._claims and (
            self._board is None
            or all(t.terminal for t in self._board.tasks.values()))

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def _claim_capacity(self) -> int:
        """Claim only what the crew can start soon: idle workers minus
        the local backlog. Hoarding claims would serialize work other
        nodes could run in parallel."""
        backlog = sum(
            1 for t in self._board.tasks.values()
            if t.kind == "run" and not t.terminal
            and t.status != "leased")
        return max(0, len(self._crew.idle_workers()) - backlog)

    def _next_epoch(self) -> int:
        """Queue lease epochs are strictly monotonic *and* above the
        node's own fence — a woken zombie that was fenced while frozen
        resumes claiming with live epochs."""
        self._queue_epoch = max(
            self._queue_epoch, self.queue.fence_epoch(self.node)) + 1
        return self._queue_epoch

    def _claim_pending(self) -> None:
        capacity = self._claim_capacity()
        if capacity <= 0:
            return
        for task_id in self.queue.pending():
            if capacity <= 0:
                break
            if task_id in self._records or self.queue.is_done(task_id):
                continue
            epoch = self._next_epoch()
            record = self.queue.claim(task_id, self.node, epoch)
            if record is None:
                continue  # lost the race (or torn record): move on
            claim = Claim(task_id, self.node, epoch,
                          self.queue._claim_path(task_id, self.node,
                                                 epoch))
            self._last_activity = time.monotonic()
            if self.tel.enabled:
                self.tel.inc("distqueue_claims_total")
                self.tel.emit("node", _trace_ctx=self._node_ctx(),
                              action="claim", task=task_id,
                              epoch=epoch)
            if self._resolve_cached(record, claim):
                continue
            self._records[task_id] = record
            self._claims[task_id] = claim
            self._admit(record)
            capacity -= 1

    def _resolve_cached(self, record: TaskRecord, claim: Claim) -> bool:
        """A requeued task may have been satisfied while it bounced
        between nodes; replay the store instead of re-executing."""
        key = record.cell_key
        if not self.store.contains(key):
            return False
        satisfied = self.store.load(key) is not None
        if not satisfied:
            prior = self.store.load_failure(key)
            satisfied = prior is not None and not (
                bool(self.manifest.get("resume")) and prior.retryable)
        if not satisfied:
            return False
        try:
            self.queue.mark_done(record.task_id, {
                "status": "cached", "node": self.node,
                "epoch": claim.epoch, "source": "cache",
                "failure_kind": None})
        finally:
            self.queue.drop_claim(claim)
        return True

    def _admit(self, record: TaskRecord) -> None:
        """Put one claimed task on the local board, chained behind its
        graph's materialize task when the shm plane is in play."""
        deps: "tuple[str, ...]" = ()
        spec_key = record.spec.cache_key()
        if self._plane_wanted():
            mat_id = self._mat_for_spec.get(spec_key)
            if mat_id is None:
                mat_id = f"materialize:{spec_key}"
                self._board.add(Task(mat_id, "materialize",
                                     payload=record.spec))
                self._mat_for_spec[spec_key] = mat_id
            mat_task = self._board.get(mat_id)
            if not mat_task.terminal:
                deps = (mat_id,)
        self._board.add(Task(record.task_id, "run", payload=record,
                             deps=deps))

    def _plane_wanted(self) -> bool:
        from repro.graph import shm

        if not self._use_shm:
            return False
        if self._plane is not None:
            return True
        if getattr(self, "_plane_failed", False):
            return False
        if not shm.shm_available():
            self._plane_failed = True
            return False
        self._plane = shm.GraphPlane()
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_ready(self, now: float) -> None:
        idle = self._crew.idle_workers()
        if not idle:
            return
        for task in self._board.ready(now):
            if not idle:
                break
            handle = idle.pop()
            epoch = self._board.lease(task.id, handle.worker, now)
            if task.kind == "materialize":
                payload: Any = (task.payload, None)
            else:
                record = task.payload
                payload = (record.planned,
                           self._manifests.get(record.spec.cache_key()))
            self._crew.dispatch(handle, TaskEnvelope(
                task.id, epoch, task.kind, payload))
            if task.kind == "run":
                self._maybe_kill_self(task.id)

    def _maybe_kill_self(self, task_id: str) -> None:
        global _injected_kill
        if self.embedded or _injected_kill:
            return
        parsed = _parse_injection(INJECT_NODE_KILL_ENV)
        if parsed is None:
            return
        pattern, count = parsed
        if count < 1 or (pattern != "*" and pattern not in task_id):
            return
        _injected_kill = True
        # Mid-lease death: the claim is on disk, a worker is executing,
        # and SIGKILL gives nothing a chance to clean up. PDEATHSIG
        # reaps the workers; the coordinator fences and requeues the
        # claim; the beats-carried segment names let it reap our shm.
        os.kill(os.getpid(), signal.SIGKILL)

    def _maybe_freeze(self, task_id: str) -> None:
        global _injected_freeze
        if self.embedded or _injected_freeze:
            return
        parsed = _parse_injection(INJECT_NODE_FREEZE_ENV)
        if parsed is None:
            return
        pattern, seconds = parsed
        if seconds <= 0 or (pattern != "*" and pattern not in task_id):
            return
        _injected_freeze = True
        self._beats.suspend()
        time.sleep(seconds)
        self._beats.resume()

    # ------------------------------------------------------------------
    # Local crew supervision (the PR 7 machinery, one level down)
    # ------------------------------------------------------------------
    def _on_worker_death(self, handle, now: float) -> None:
        task = (self._board.get(handle.task_id)
                if handle.task_id is not None else None)
        lease = (task.find_lease(handle.worker)
                 if task is not None else None)
        if self.tel.enabled:
            self.tel.inc("scheduler_worker_deaths_total")
            self.tel.emit("node", _trace_ctx=self._node_ctx(),
                          action="worker-died",
                          worker=handle.worker, task=handle.task_id)
        if task is not None and lease is not None and not task.terminal:
            outcome = self._board.revoke_lease(task, lease, now,
                                               reason="worker-died")
            if outcome == "quarantined":
                self._publish_poison(task)
        if not self._stopping:
            self._crew.replace(handle)
        else:
            self._crew.remove(handle)

    def _on_local_expiry(self, task: Task, lease, now: float) -> None:
        outcome = self._board.revoke_lease(task, lease, now,
                                           reason="lease-expired")
        if outcome == "stale":
            return
        if self.tel.enabled:
            self.tel.inc("scheduler_lease_expiries_total")
            self.tel.emit("node", _trace_ctx=self._node_ctx(),
                          action="lease-expired", task=task.id,
                          worker=lease.worker, outcome=outcome)
        handle = self._crew.workers.get(lease.worker)
        if handle is not None:
            self._crew.kill(handle)
            if not self._stopping:
                self._crew.spawn()
                self._crew.replaced += 1
        if outcome == "quarantined":
            self._publish_poison(task)

    def _publish_poison(self, task: Task) -> None:
        """Local poison budget spent: record the quarantine verdict in
        the shared store (fence-checked like any publish) so every node
        and every future resumed build replays it."""
        record = self._records.get(task.id)
        claim = self._claims.pop(task.id, None)
        if record is None or claim is None:
            return
        self._records.pop(task.id, None)
        failure = task.failure or RunFailure(
            kind="quarantined-poison", message="local poison budget spent")
        if self.queue.check_fence(self.node, claim.epoch):
            self.store.save_failure(record.cell_key, failure)
            self.queue.mark_done(record.task_id, {
                "status": "quarantined", "node": self.node,
                "epoch": claim.epoch, "source": "run",
                "failure_kind": failure.kind})
        else:
            self._count_stale(record.task_id, claim.epoch)
        self.queue.drop_claim(claim)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _on_result(self, envelope) -> None:
        self._crew.mark_idle(envelope.worker)
        self._last_activity = time.monotonic()
        task = self._board.get(envelope.task_id)
        if task is None:
            return
        if task.kind == "materialize":
            if envelope.ok:
                self._publish_materialized(envelope.value)
            self._board.complete(task.id, None)
            return
        self._maybe_freeze(task.id)
        record = self._records.get(task.id)
        claim = self._claims.get(task.id)
        if envelope.ok:
            accepted = self._board.complete(task.id, envelope.value)
            run = envelope.value
        else:
            accepted = self._board.fail(task.id, envelope.epoch,
                                        envelope.error)
            from repro.experiments.corpus import CorpusRun

            run = CorpusRun(record.algorithm if record else "?",
                            record.spec if record else None, None, None,
                            failure=envelope.error)
        if not accepted or record is None or claim is None:
            return  # stale local lease: the replacement owns the cell
        self._claims.pop(task.id, None)
        self._records.pop(task.id, None)
        if run.obs_snapshot is not None:
            # Fold the worker's per-cell metric delta into this node's
            # registry; it reaches the coordinator via the node sink.
            self.tel.merge_snapshot(run.obs_snapshot)
            run.obs_snapshot = None
        if publish_result(self.queue, self.store, self.node,
                          claim.epoch, record, run):
            if self.tel.enabled:
                self.tel.inc("distqueue_publishes_total",
                             status="ok" if run.ok else "failed")
        else:
            self._count_stale(task.id, claim.epoch)
        self.queue.drop_claim(claim)

    def _count_stale(self, task_id: str, epoch: int) -> None:
        """The fence says this lease was revoked while we held it: the
        store attempt is rejected — never written — counted here and on
        the next heartbeat, and logged for the operator."""
        self.stale_rejections += 1
        if self.tel.enabled:
            self.tel.inc("distqueue_stale_rejections_total")
            self.tel.emit("node", _trace_ctx=self._node_ctx(),
                          action="stale-epoch-rejected",
                          task=task_id, epoch=epoch,
                          fence=self.queue.fence_epoch(self.node))
        self._beats.beat()

    def _publish_materialized(self, value) -> None:
        from repro.graph import shm

        if self._plane is None or value is None:
            return
        spec_key, problem = value
        if not shm.publishable(problem):
            return
        try:
            self._manifests[spec_key] = self._plane.publish(spec_key,
                                                            problem)
            self._beats.beat()  # segment names reach the coordinator
        except Exception:
            self._plane.close()
            self._plane = None
            self._plane_failed = True
            self._manifests = {}

    def _node_ctx(self):
        """Per-event causal context for node-lifecycle events: a
        deterministic child of the build span keyed by node id."""
        if self.tel.trace is None:
            return None
        return self.tel.trace.child("node", self.node)

    def _emit_transition(self, task: Task, old: str, new: str,
                         info: dict) -> None:
        if not self.tel.enabled:
            return
        self.tel.inc("scheduler_transitions_total", to=new)
        ctx = (self.tel.trace.child("task", task.id)
               if self.tel.trace is not None else None)
        self.tel.emit("task", _trace_ctx=ctx, task=task.id,
                      task_kind=task.kind,
                      **{"from": old, "to": new}, **info)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if not self._started or self._stopping:
            self._stopping = True
            return
        self._stopping = True
        # Unfinished claims go back to the queue for someone else.
        for task_id, claim in list(self._claims.items()):
            task = self._board.get(task_id)
            if task is None or not task.terminal:
                try:
                    self.queue.release(claim)
                except OSError:
                    pass
        self._claims.clear()
        busy = any(not h.idle for h in self._crew.workers.values())
        self._crew.shutdown(kill=busy)
        if self._plane is not None:
            self._plane.close()
            self._plane = None
        self._site.cleanup()
        if self._beats is not None:
            self._beats.beat(done=True)
            self._beats.stop()
        if self.tel.enabled:
            self.tel.emit("node", _trace_ctx=self._node_ctx(),
                          action="stop",
                          stale_rejections=self.stale_rejections)
            self.tel.record_peak_rss()
        if self._owns_obs:
            self._flush_obs()

    def _flush_obs(self) -> None:
        from repro.obs.events import node_metrics_path, write_worker_metrics
        from repro.obs.telemetry import deactivate, get_telemetry

        tel = get_telemetry()
        obs_dir = self.manifest.get("obs_dir")
        if obs_dir:
            try:
                write_worker_metrics(
                    node_metrics_path(obs_dir, self.node), tel.snapshot())
            except OSError:
                pass
        deactivate()

    # ------------------------------------------------------------------
    # Standalone entry (the ``repro node`` CLI)
    # ------------------------------------------------------------------
    def run(self, *, manifest_wait_s: float = 60.0) -> int:
        """Serve the queue until the build completes (or the queue
        disappears). Returns a process exit code."""
        if not self._await_manifest(manifest_wait_s):
            return 1
        try:
            self.start()
        except (RuntimeError, OSError):
            return 1
        try:
            while not self._stopping:
                self.tick()
                if self.queue.complete() and self.drained:
                    break
                if not (self.queue.root / "manifest.json").exists():
                    break  # queue swept: the build is over
                if (self.idle_exit_s is not None and not self._claims
                        and time.monotonic() - self._last_activity
                        > self.idle_exit_s):
                    break
                time.sleep(self.poll_s)
        finally:
            self.shutdown()
        return 0

    def _await_manifest(self, wait_s: float) -> bool:
        deadline = time.monotonic() + max(0.0, wait_s)
        while True:
            if self.queue.complete():
                return False
            if self.manifest is not None or (
                    self.queue.read_manifest()) is not None:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.1)
