"""Fenced, partition-tolerant shared work queue for multi-node builds.

PR 7 gave one machine a supervised plan/lease/execute/update loop;
this module lets a corpus build outlive that machine. The queue is a
directory on a filesystem every participating node can reach (NFS,
a shared scratch volume, or plain ``/tmp`` for the in-tree smoke) and
borrows its correctness story from two primitives the repo already
trusts:

- **Atomic rename as mutual exclusion.** A task is one file under
  ``tasks/``; a node claims it by ``os.replace``-renaming it into
  ``claims/<task>@<node>@<epoch>.json``. Rename of one source path is
  atomic — when two nodes race, exactly one rename succeeds and the
  loser observes ``FileNotFoundError``. Ownership lives in the claim
  *filename*, so there is no rewrite-after-rename window in which a
  claim is ambiguous.
- **Content-addressed, first-completion-wins results.** Execution
  results travel through the existing
  :class:`~repro.experiments.results.ResultStore`: byte-identical
  deterministic traces under content-addressed keys, published with
  atomic writer-unique staging. Duplicate execution after a partition
  is therefore harmless — both sides write the same bytes.

What makes the queue *partition-tolerant* rather than merely shared is
**epoch fencing**. Every claim carries a per-node, monotonically
increasing lease epoch. When the coordinator declares a node dead
(missed heartbeats in ``nodes/``), it first raises that node's fence
(``fences/<node>.json``, a persisted epoch floor) and only then
requeues the node's claims. A zombie that wakes later re-checks its
fence before publishing: a lease epoch at or below the floor means the
work was revoked — the store attempt is rejected, counted, and logged,
never published. The fence file outlives the zombie's nap, so the
check cannot race with its own revocation.

Completion is a ``done/<task>.json`` marker written *after* the fenced
store publish. A node that dies between publish and marker wastes
nothing: the replacement claims the task, finds the store entry, and
marks done without re-executing (effectively exactly-once). Poison
cells — tasks that keep killing whichever node runs them — burn a
global requeue budget tracked by the coordinator and are quarantined
into the store as ``quarantined-poison``, exactly like PR 7's
single-node budget.

The coordinator (:class:`Coordinator`) is deliberately *one more
supervisor over the queue*, not a privileged master: it runs its own
in-process :class:`~repro.experiments.nodeagent.NodeAgent` (so a build
with zero peers degrades gracefully to the PR 7 single-node shape),
collects done markers in plan order, and owns only the jobs that need
a single writer — fencing, requeueing, quarantine, and the final
sweep that leaves no queue/heartbeat/shm artifacts behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro._util.errors import ValidationError
from repro.experiments.config import GraphSpec, PlannedRun, Profile
from repro.experiments.failures import RunFailure, full_jitter_backoff

#: Queue layout version; bumped on incompatible manifest changes.
QUEUE_VERSION = 1

MANIFEST_FILENAME = "manifest.json"
COMPLETE_FILENAME = "complete.json"
TASKS_DIRNAME = "tasks"
CLAIMS_DIRNAME = "claims"
DONE_DIRNAME = "done"
NODES_DIRNAME = "nodes"
FENCES_DIRNAME = "fences"
WORK_DIRNAME = "work"

#: Hex digits of the content hash appended to every task id.
_TASK_DIGEST_LEN = 12

#: Default global requeue budget per task (node deaths / partitions)
#: before the coordinator quarantines the cell as poison.
DEFAULT_MAX_TASK_REQUEUES = 3


def _sanitize(text: str) -> str:
    """Filesystem-safe token: alnum plus ``-_.=`` (no ``@``, which the
    claim filename uses as its field separator)."""
    return "".join(c if c.isalnum() or c in "-_.=" else "_" for c in text)


def _write_json_atomic(path: Path, payload: dict) -> None:
    # Deliberately no mkdir: once the coordinator sweeps the queue,
    # late writes (a waking zombie's beat or marker) must fail instead
    # of resurrecting the directory tree as orphan litter.
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_json(path: Path) -> "dict | None":
    """Parse one JSON file; None when absent, torn, or not an object
    (a torn file means a writer died mid-stage — the atomic-replace
    discipline keeps the published generation whole)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return data if isinstance(data, dict) else None


# ----------------------------------------------------------------------
# Task records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskRecord:
    """One corpus cell as a durable, content-addressed queue entry.

    The id is the sanitized cell key plus a hash of the canonical
    record JSON — readable enough that sorting pending ids groups
    same-graph cells (preserving graph-affinity scheduling across
    nodes), collision-proof because of the digest suffix.
    """

    cell_key: str
    algorithm: str
    spec: GraphSpec

    @property
    def task_id(self) -> str:
        digest = hashlib.blake2b(
            json.dumps(self._payload(), sort_keys=True).encode("utf-8"),
            digest_size=8).hexdigest()[:_TASK_DIGEST_LEN]
        return f"{_sanitize(self.cell_key)}-{digest}"

    @property
    def planned(self) -> PlannedRun:
        return PlannedRun(self.algorithm, self.spec)

    def _payload(self) -> dict:
        return {
            "cell_key": self.cell_key,
            "algorithm": self.algorithm,
            "spec": dataclasses.asdict(self.spec),
        }

    def to_dict(self) -> dict:
        return {"version": QUEUE_VERSION, **self._payload()}

    @classmethod
    def from_dict(cls, data: dict) -> "TaskRecord":
        spec = data.get("spec")
        if not isinstance(spec, dict):
            raise ValidationError("task record has no spec")
        return cls(
            cell_key=str(data["cell_key"]),
            algorithm=str(data["algorithm"]),
            spec=GraphSpec(
                domain=str(spec["domain"]),
                nedges=(None if spec.get("nedges") is None
                        else int(spec["nedges"])),
                alpha=(None if spec.get("alpha") is None
                       else float(spec["alpha"])),
                nrows=(None if spec.get("nrows") is None
                       else int(spec["nrows"])),
                seed=int(spec.get("seed", 0)),
            ),
        )

    @classmethod
    def for_planned(cls, planned: PlannedRun,
                    profile: Profile) -> "TaskRecord":
        from repro.experiments.corpus import run_cache_key

        return cls(cell_key=run_cache_key(planned, profile),
                   algorithm=planned.algorithm, spec=planned.spec)


@dataclass(frozen=True)
class Claim:
    """One outstanding lease, parsed back from its claim filename."""

    task_id: str
    node: str
    epoch: int
    path: Path

    @property
    def age_s(self) -> float:
        try:
            return max(0.0, time.time() - self.path.stat().st_mtime)
        except OSError:
            return 0.0


@dataclass(frozen=True)
class NodeBeat:
    """One node agent's latest registry heartbeat."""

    node: str
    pid: int
    ts: float
    epoch: int
    tasks: tuple
    stale_rejections: int
    segments: tuple
    done: bool
    host: str = ""

    @property
    def age_s(self) -> float:
        return max(0.0, time.time() - self.ts)

    def provably_dead(self) -> bool:
        """True only when the beat's process can be *proven* gone: it
        ran on this host and its pid no longer exists. Cross-host
        beats are never provably dead — a partition looks identical."""
        if not self.host or self.host != socket.gethostname():
            return False
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False
        return False


# ----------------------------------------------------------------------
# Profile transport
# ----------------------------------------------------------------------
def profile_to_dict(profile: Profile) -> dict:
    return dataclasses.asdict(profile)


def profile_from_dict(data: dict) -> Profile:
    kwargs = dict(data)
    for attr in ("ga_sizes", "cf_sizes", "matrix_rows", "grid_sides",
                 "mrf_edges"):
        kwargs[attr] = tuple(int(v) for v in kwargs[attr])
    kwargs["alphas"] = tuple(float(v) for v in kwargs["alphas"])
    return Profile(**kwargs)


# ----------------------------------------------------------------------
# The queue
# ----------------------------------------------------------------------
class DistributedQueue:
    """Directory protocol shared by the coordinator and node agents.

    Every mutation is a single atomic filesystem operation (rename or
    tmp-stage + replace), so the protocol needs no locks and survives
    any participant dying at any instruction boundary.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------
    @property
    def tasks_dir(self) -> Path:
        return self.root / TASKS_DIRNAME

    @property
    def claims_dir(self) -> Path:
        return self.root / CLAIMS_DIRNAME

    @property
    def done_dir(self) -> Path:
        return self.root / DONE_DIRNAME

    @property
    def nodes_dir(self) -> Path:
        return self.root / NODES_DIRNAME

    @property
    def fences_dir(self) -> Path:
        return self.root / FENCES_DIRNAME

    @property
    def work_dir(self) -> Path:
        return self.root / WORK_DIRNAME

    def ensure_layout(self) -> None:
        for sub in (self.tasks_dir, self.claims_dir, self.done_dir,
                    self.nodes_dir, self.fences_dir, self.work_dir):
            sub.mkdir(parents=True, exist_ok=True)

    def node_workdir(self, node: str) -> Path:
        """Per-node scratch (crew worksite) *inside* the queue root, so
        a SIGKILLed node's heartbeat litter is removed by the final
        sweep instead of leaking into the system tmpdir."""
        return self.work_dir / _sanitize(node)

    # -- manifest ------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        _write_json_atomic(self.root / MANIFEST_FILENAME,
                           {"version": QUEUE_VERSION, **manifest})

    def read_manifest(self) -> "dict | None":
        data = _read_json(self.root / MANIFEST_FILENAME)
        if data is None or int(data.get("version", 0)) != QUEUE_VERSION:
            return None
        return data

    # -- tasks ---------------------------------------------------------
    def _task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.json"

    def publish(self, record: TaskRecord) -> bool:
        """Enqueue a task; False when it already exists anywhere in the
        pipeline (pending, claimed, or done)."""
        tid = record.task_id
        if (self._task_path(tid).exists() or self.is_done(tid)
                or any(c.task_id == tid for c in self.claims())):
            return False
        _write_json_atomic(self._task_path(tid), record.to_dict())
        return True

    def pending(self) -> "list[str]":
        """Pending task ids, sorted — cell keys embed the graph spec,
        so lexicographic order is graph-affinity order."""
        try:
            names = [p.stem for p in self.tasks_dir.glob("*.json")]
        except OSError:
            return []
        return sorted(names)

    def read_task(self, task_id: str) -> "TaskRecord | None":
        data = _read_json(self._task_path(task_id))
        if data is None:
            return None
        try:
            return TaskRecord.from_dict(data)
        except (KeyError, TypeError, ValueError, ValidationError):
            return None

    # -- claims --------------------------------------------------------
    def _claim_path(self, task_id: str, node: str, epoch: int) -> Path:
        return self.claims_dir / f"{task_id}@{_sanitize(node)}@{int(epoch)}.json"

    def claim(self, task_id: str, node: str,
              epoch: int) -> "TaskRecord | None":
        """Atomically take ownership of a pending task.

        The rename is the entire mutual-exclusion protocol: exactly one
        of any number of concurrent claimants wins; everyone else gets
        None (the source path is gone) and moves on.
        """
        dest = self._claim_path(task_id, node, epoch)
        try:
            os.replace(self._task_path(task_id), dest)
        except FileNotFoundError:
            return None
        data = _read_json(dest)
        if data is None:
            return None
        try:
            return TaskRecord.from_dict(data)
        except (KeyError, TypeError, ValueError, ValidationError):
            return None

    def claims(self) -> "list[Claim]":
        out: "list[Claim]" = []
        try:
            paths = list(self.claims_dir.glob("*.json"))
        except OSError:
            return out
        for path in paths:
            parts = path.stem.rsplit("@", 2)
            if len(parts) != 3:
                continue
            tid, node, epoch = parts
            try:
                out.append(Claim(tid, node, int(epoch), path))
            except ValueError:
                continue
        return sorted(out, key=lambda c: (c.task_id, c.node, c.epoch))

    def release(self, claim: Claim) -> bool:
        """Put a claimed task back into ``tasks/`` (voluntary release
        by its owner, or a coordinator requeue after fencing). False
        when the claim vanished first — the owner completed it, or a
        concurrent requeue won."""
        try:
            os.replace(claim.path, self._task_path(claim.task_id))
        except FileNotFoundError:
            return False
        return True

    def drop_claim(self, claim: Claim) -> None:
        claim.path.unlink(missing_ok=True)

    # -- fences --------------------------------------------------------
    def _fence_path(self, node: str) -> Path:
        return self.fences_dir / f"{_sanitize(node)}.json"

    def fence_epoch(self, node: str) -> int:
        data = _read_json(self._fence_path(node))
        if data is None:
            return 0
        try:
            return int(data.get("epoch", 0))
        except (TypeError, ValueError):
            return 0

    def raise_fence(self, node: str, epoch: int) -> int:
        """Persist ``epoch`` as the node's revocation floor (monotonic:
        an older concurrent write can only be superseded, never lower
        the floor). Every lease of that node with epoch <= floor is
        dead; the zombie's later publish attempt must check this."""
        floor = max(self.fence_epoch(node), int(epoch))
        _write_json_atomic(self._fence_path(node),
                           {"node": node, "epoch": floor, "ts": time.time()})
        return floor

    def check_fence(self, node: str, epoch: int) -> bool:
        """True when a lease epoch is still live (above the floor).

        A missing ``fences/`` directory means the queue was never laid
        out or has already been swept — either way no lease taken from
        it can still be valid, so the check fails closed. Without this
        a zombie sleeping past the *entire build* would wake to find
        its fence file gone and read the empty floor as permission."""
        if not self.fences_dir.is_dir():
            return False
        return int(epoch) > self.fence_epoch(node)

    # -- done markers --------------------------------------------------
    def _done_path(self, task_id: str) -> Path:
        return self.done_dir / f"{task_id}.json"

    def mark_done(self, task_id: str, payload: dict) -> None:
        """Publish the completion marker. Last-writer-wins is safe:
        duplicate completers recorded the same store bytes, so the
        markers differ only in who signed them."""
        _write_json_atomic(self._done_path(task_id),
                           {"task_id": task_id, "ts": time.time(),
                            **payload})

    def is_done(self, task_id: str) -> bool:
        return self._done_path(task_id).exists()

    def read_done(self, task_id: str) -> "dict | None":
        return _read_json(self._done_path(task_id))

    def drop_done(self, task_id: str) -> None:
        self._done_path(task_id).unlink(missing_ok=True)

    # -- node registry -------------------------------------------------
    def write_beat(self, node: str, payload: dict) -> None:
        _write_json_atomic(self.nodes_dir / f"{_sanitize(node)}.json",
                           {"node": node, "pid": os.getpid(),
                            "host": socket.gethostname(),
                            "ts": time.time(), **payload})

    def read_beats(self) -> "dict[str, NodeBeat]":
        beats: "dict[str, NodeBeat]" = {}
        try:
            paths = list(self.nodes_dir.glob("*.json"))
        except OSError:
            return beats
        for path in paths:
            data = _read_json(path)
            if data is None:
                continue
            try:
                beat = NodeBeat(
                    node=str(data["node"]), pid=int(data["pid"]),
                    ts=float(data["ts"]),
                    epoch=int(data.get("epoch", 0)),
                    tasks=tuple(data.get("tasks", ())),
                    stale_rejections=int(data.get("stale_rejections", 0)),
                    segments=tuple(data.get("segments", ())),
                    done=bool(data.get("done", False)),
                    host=str(data.get("host", "")))
            except (KeyError, TypeError, ValueError):
                continue
            beats[beat.node] = beat
        return beats

    def drop_beat(self, node: str) -> None:
        (self.nodes_dir / f"{_sanitize(node)}.json").unlink(missing_ok=True)

    # -- completion + sweep --------------------------------------------
    def mark_complete(self) -> None:
        _write_json_atomic(self.root / COMPLETE_FILENAME,
                           {"ts": time.time()})

    def complete(self) -> bool:
        return (self.root / COMPLETE_FILENAME).exists()

    def sweep(self) -> int:
        """Remove every queue artifact and the root itself; returns the
        number of files that could not be removed (0 = clean exit with
        no orphan queue/heartbeat artifacts)."""
        leftovers = 0
        for sub in (self.work_dir, self.tasks_dir, self.claims_dir,
                    self.done_dir, self.nodes_dir, self.fences_dir):
            if not sub.exists():
                continue
            for path in sorted(sub.rglob("*"), reverse=True):
                try:
                    if path.is_dir():
                        path.rmdir()
                    else:
                        path.unlink()
                except OSError:
                    leftovers += 1
            try:
                sub.rmdir()
            except OSError:
                leftovers += 1
        for name in (MANIFEST_FILENAME, COMPLETE_FILENAME):
            try:
                (self.root / name).unlink()
            except FileNotFoundError:
                pass
            except OSError:
                leftovers += 1
        try:
            self.root.rmdir()
        except OSError:
            leftovers += 1
        return leftovers


# ----------------------------------------------------------------------
# Fence-checked publication (shared by agents and the coordinator)
# ----------------------------------------------------------------------
def publish_result(queue: DistributedQueue, store: Any, node: str,
                   epoch: int, record: TaskRecord, run: Any, *,
                   source: str = "run") -> bool:
    """Publish one executed cell's outcome, gated by the node's fence.

    Returns True when the result was stored and the done marker
    written; False when the lease epoch was at or below the node's
    fence — the work was revoked while we held it, so the store
    attempt is rejected (counted and logged by the caller) and the
    replacement's outcome stands instead.

    The order matters: fence check, then store publish, then marker.
    A death after the store publish but before the marker wastes
    nothing — the replacement finds the store entry and marks done
    without re-executing.
    """
    if not queue.check_fence(node, epoch):
        return False
    status = "ok"
    if run.trace is not None:
        store.save(record.cell_key, run.trace)
        if run.trace.degraded:
            status = "degraded"
    else:
        store.save_failure(record.cell_key, run.failure)
        status = "failed"
    queue.mark_done(record.task_id, {
        "status": status, "node": node, "epoch": int(epoch),
        "source": source,
        "failure_kind": None if run.failure is None else run.failure.kind,
    })
    return True


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class _TaskState:
    """Coordinator-side requeue bookkeeping for one task."""

    record: TaskRecord
    requeues: int = 0
    not_before: float = 0.0
    pending_claim: "Claim | None" = None


class Coordinator:
    """Supervises one distributed build over the shared queue.

    Runs its own in-process node agent (so zero peers degrade to the
    PR 7 single-node shape), detects dead or partitioned nodes by
    heartbeat age, fences them *before* requeueing their claims (the
    fencing order is what makes a woken zombie harmless), re-dispatches
    revoked leases with full-jitter backoff, quarantines poison cells
    globally, and collects done markers into the corpus in plan order
    so ``vectors()`` is bit-identical with an inline build.
    """

    def __init__(self, *, queue: DistributedQueue, plan: list,
                 profile: Profile, store: Any, corpus: Any,
                 manifest: dict, node_workers: int,
                 node_lease_timeout_s: float = 15.0,
                 poll_s: float = 0.05,
                 max_task_requeues: int = DEFAULT_MAX_TASK_REQUEUES,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 peer_exit_grace_s: float = 10.0,
                 progress: "Callable | None" = None,
                 stop_requested: "Callable | None" = None) -> None:
        from repro.obs.telemetry import get_telemetry

        self.queue = queue
        self.plan = plan
        self.profile = profile
        self.store = store
        self.corpus = corpus
        self.manifest = manifest
        self.node_workers = max(1, int(node_workers))
        self.node_lease_timeout_s = float(node_lease_timeout_s)
        self.poll_s = float(poll_s)
        self.max_task_requeues = max(1, int(max_task_requeues))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.peer_exit_grace_s = float(peer_exit_grace_s)
        self.progress = progress
        self._stop = stop_requested or (lambda: False)
        self.tel = get_telemetry()
        self.local_node = "coordinator"
        self._tasks: "dict[str, _TaskState]" = {}
        self._records: "list[TaskRecord]" = []
        self._collect_ptr = 0
        self._lost_nodes: "set[str]" = set()
        self._peer_stale: "dict[str, int]" = {}
        self._peer_segments: "dict[str, tuple]" = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        from repro.experiments.nodeagent import NodeAgent

        self.queue.ensure_layout()
        self.queue.write_manifest(self.manifest)
        self._enqueue_plan()
        agent = NodeAgent(self.queue, workers=self.node_workers,
                          manifest=self.manifest, embedded=True)
        self.local_node = agent.node
        agent.start()
        self.corpus.distributed = True
        interrupted = False
        try:
            while self._collect_ptr < len(self.plan):
                if self._stop():
                    interrupted = True
                    break
                now = time.time()
                agent.tick()
                self._supervise(now)
                self._collect()
                if self._collect_ptr >= len(self.plan):
                    break
                time.sleep(self.poll_s)
        finally:
            self.queue.mark_complete()
            agent.shutdown()
            self._harvest_beats(final=True)
            self._wait_for_peers()
            self._reap_lost_segments()
            if interrupted:
                self.corpus.interrupted = True
            leftovers = self.queue.sweep()
            self.corpus.queue_leftovers = leftovers
            if self.tel.enabled:
                self.tel.emit("distqueue", action="swept",
                              leftovers=leftovers)

    # ------------------------------------------------------------------
    def _enqueue_plan(self) -> None:
        """Publish one task per cell that is not already satisfied by
        the shared store (mirroring the inline cache-replay rules)."""
        resume = bool(self.manifest.get("resume"))
        for planned in self.plan:
            record = TaskRecord.for_planned(planned, self.profile)
            self._records.append(record)
            self._tasks[record.task_id] = _TaskState(record)
            if self._satisfied_from_store(record.cell_key, resume):
                continue
            self.queue.publish(record)

    def _satisfied_from_store(self, cell_key: str, resume: bool) -> bool:
        if not self.store.contains(cell_key):
            return False
        if self.store.load(cell_key) is not None:
            return True
        prior = self.store.load_failure(cell_key)
        if prior is None:
            return False
        return not (resume and prior.retryable)

    # ------------------------------------------------------------------
    # Node supervision: fencing, requeue, quarantine
    # ------------------------------------------------------------------
    def _supervise(self, now: float) -> None:
        self._harvest_beats()
        beats = self.queue.read_beats()
        by_node: "dict[str, list[Claim]]" = {}
        for claim in self.queue.claims():
            by_node.setdefault(claim.node, []).append(claim)
        for node, node_claims in by_node.items():
            if node == self.local_node:
                continue  # the embedded agent supervises its own crew
            beat = beats.get(node)
            fresh = (beat is not None and not beat.done
                     and beat.age_s <= self.node_lease_timeout_s)
            if fresh:
                if node in self._lost_nodes:
                    # The partition healed: the node beats again, and
                    # having re-read its fence it claims with live
                    # epochs — only its pre-fence leases stay revoked.
                    self._lost_nodes.discard(node)
                    if self.tel.enabled:
                        self.tel.emit("distqueue",
                                      action="node-recovered", node=node)
                continue
            if beat is None and any(
                    c.age_s <= self.node_lease_timeout_s
                    for c in node_claims):
                # Claimed but never beat: a node that just arrived, or
                # one that died on arrival — claim age decides which.
                continue
            floor = self.queue.fence_epoch(node)
            if node not in self._lost_nodes or any(
                    c.epoch > floor for c in node_claims):
                # First loss, or a recovered node lost *again* (its
                # post-recovery claims sit above the old fence): fence
                # at the node's newest epoch before touching claims.
                self._declare_lost(node, node_claims, beat, now)
                floor = self.queue.fence_epoch(node)
            self._revoke_node(
                node, [c for c in node_claims if c.epoch <= floor],
                now, reason="node-lost")
        self._drain_requeues(now)

    def _ctx(self, *parts):
        """Deterministic child span of the build for task/node events
        (``None`` when the build runs untraced)."""
        if self.tel.trace is None:
            return None
        return self.tel.trace.child(*parts)

    def _declare_lost(self, node: str, node_claims: "list[Claim]",
                      beat: "NodeBeat | None", now: float) -> None:
        """Fence first, then revoke: after the fence write any publish
        attempt from the node's old epochs is rejected, so requeueing
        its claims can never race a zombie completion."""
        epochs = [c.epoch for c in node_claims]
        if beat is not None:
            epochs.append(beat.epoch)
            self._peer_segments[node] = beat.segments
        floor = self.queue.raise_fence(node, max(epochs, default=0))
        self._lost_nodes.add(node)
        self.corpus.nodes_lost += 1
        if self.tel.enabled:
            self.tel.inc("distqueue_nodes_lost_total")
            self.tel.emit("distqueue", _trace_ctx=self._ctx("node", node),
                          action="node-lost", node=node,
                          fence_epoch=floor, claims=len(node_claims))

    def _revoke_node(self, node: str, node_claims: "list[Claim]",
                     now: float, reason: str) -> None:
        for claim in node_claims:
            state = self._tasks.get(claim.task_id)
            if state is None or state.pending_claim is not None:
                continue
            if self.queue.is_done(claim.task_id):
                # Completed before the fence landed; the claim file is
                # litter now.
                self.queue.drop_claim(claim)
                continue
            state.requeues += 1
            self.corpus.lease_expiries += 1
            if state.requeues >= self.max_task_requeues:
                self._quarantine(state, claim, reason)
                continue
            backoff = full_jitter_backoff(
                self.backoff_base_s, state.requeues, key=claim.task_id,
                cap_s=self.backoff_cap_s)
            state.pending_claim = claim
            state.not_before = now + backoff
            if self.tel.enabled:
                self.tel.inc("distqueue_requeues_total", node=node)
                self.tel.emit("distqueue",
                              _trace_ctx=self._ctx("task", claim.task_id),
                              action="lease-revoked",
                              task=claim.task_id, node=node,
                              epoch=claim.epoch, reason=reason,
                              backoff_s=backoff,
                              requeues=state.requeues)

    def _drain_requeues(self, now: float) -> None:
        for state in self._tasks.values():
            claim = state.pending_claim
            if claim is None or state.not_before > now:
                continue
            state.pending_claim = None
            if self.queue.is_done(claim.task_id):
                self.queue.drop_claim(claim)
                continue
            if self.queue.release(claim):
                self.corpus.queue_requeues += 1
                if self.tel.enabled:
                    self.tel.emit(
                        "distqueue",
                        _trace_ctx=self._ctx("task", claim.task_id),
                        action="requeued",
                        task=claim.task_id, node=claim.node)

    def _quarantine(self, state: _TaskState, claim: Claim,
                    reason: str) -> None:
        """Global poison verdict: persisted through the shared store so
        every node (and every future resumed build) replays it."""
        failure = RunFailure(
            kind="quarantined-poison",
            message=(f"quarantined after {state.requeues} revoked "
                     f"node leases (last: {reason}) — this cell takes "
                     f"down every node that claims it"),
            attempts=state.requeues)
        self.store.save_failure(state.record.cell_key, failure)
        self.queue.mark_done(state.record.task_id, {
            "status": "quarantined", "node": claim.node,
            "epoch": claim.epoch, "source": "run",
            "failure_kind": failure.kind})
        self.queue.drop_claim(claim)
        if self.tel.enabled:
            self.tel.inc("distqueue_quarantined_total")
            self.tel.emit(
                "distqueue",
                _trace_ctx=self._ctx("task", state.record.task_id),
                action="quarantined",
                task=state.record.task_id, node=claim.node,
                requeues=state.requeues)

    # ------------------------------------------------------------------
    # Collection (plan order)
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        from repro.experiments.corpus import format_progress, progress_event

        total = len(self.plan)
        while self._collect_ptr < total:
            record = self._records[self._collect_ptr]
            run = self._resolve(record)
            if run is None:
                break
            if run.obs_snapshot is not None:
                self.tel.merge_snapshot(run.obs_snapshot)
                run.obs_snapshot = None
            if run.ok:
                self.corpus.runs.append(run)
            else:
                self.corpus.failures.append(run)
            self._collect_ptr += 1
            event = progress_event(run, self._collect_ptr, total)
            self.tel.emit("progress", **event)
            if self.progress is not None:
                self.progress(format_progress(event))

    def _resolve(self, record: TaskRecord):
        """One cell's outcome, or None when still in flight."""
        from repro.behavior.metrics import compute_metrics
        from repro.experiments.corpus import CorpusRun

        marker = self.queue.read_done(record.task_id)
        source = "cache"
        if marker is not None:
            if not self._marker_live(record, marker):
                return None
            source = str(marker.get("source", "run"))
        elif not self._satisfied_from_store(
                record.cell_key, bool(self.manifest.get("resume"))):
            return None
        trace = self.store.load(record.cell_key)
        if trace is not None:
            return CorpusRun(record.algorithm, record.spec, trace,
                             compute_metrics(trace), source=source)
        failure = self.store.load_failure(record.cell_key)
        if failure is not None:
            return CorpusRun(record.algorithm, record.spec, None, None,
                             failure=failure, source=source)
        # Marked done but the store lost the entry (quarantined as
        # corrupt): drop the marker and re-enqueue the cell.
        if marker is not None:
            self.queue.drop_done(record.task_id)
            self.queue.publish(record)
        return None

    def _marker_live(self, record: TaskRecord, marker: dict) -> bool:
        """Reject a done marker signed with a fenced epoch.

        Node agents check their fence before publishing, so this only
        fires in the razor-thin window where a marker lands while the
        fence write is in flight; the store bytes it points at may be
        from a revoked attempt, so the coordinator refuses it, counts
        it, and re-enqueues the cell. A chaos run asserts this counter
        stays zero — the cooperative fence check catches everything.
        """
        node = str(marker.get("node", ""))
        try:
            epoch = int(marker.get("epoch", 0))
        except (TypeError, ValueError):
            epoch = 0
        if (node in ("", self.local_node)
                or marker.get("status") == "quarantined"):
            return True
        if self.queue.check_fence(node, epoch):
            return True
        self.corpus.stale_done_markers += 1
        if self.tel.enabled:
            self.tel.inc("distqueue_stale_done_markers_total", node=node)
            self.tel.emit(
                "distqueue",
                _trace_ctx=self._ctx("task", record.task_id),
                action="stale-done-rejected",
                task=record.task_id, node=node, epoch=epoch)
        self.queue.drop_done(record.task_id)
        self.store.discard(record.cell_key)
        self.queue.publish(record)
        return False

    # ------------------------------------------------------------------
    # Peer accounting + shutdown hygiene
    # ------------------------------------------------------------------
    def _harvest_beats(self, final: bool = False) -> "dict[str, NodeBeat]":
        beats = self.queue.read_beats()
        nodes_seen = set(self._peer_stale)
        for node, beat in beats.items():
            nodes_seen.add(node)
            self._peer_stale[node] = max(
                self._peer_stale.get(node, 0), beat.stale_rejections)
            if beat.segments:
                self._peer_segments[node] = beat.segments
        self.corpus.nodes_seen = max(self.corpus.nodes_seen,
                                     len(nodes_seen))
        self.corpus.stale_epoch_rejections = sum(
            self._peer_stale.values())
        return beats

    def _wait_for_peers(self) -> None:
        """Hold the queue (and its fences) open until every registered
        peer has either written its final ``done`` beat or is provably
        dead, bounded by the grace period.

        The silent-but-not-done case matters: a node frozen past its
        lease is already fenced, but tearing the fence files down
        before it wakes would let its stale publish through unchecked.
        Cross-host silence is indistinguishable from a partition, so
        those peers simply cost the full grace period."""
        deadline = time.monotonic() + self.peer_exit_grace_s
        while True:
            pending = [b for b in self._harvest_beats().values()
                       if not b.done and not b.provably_dead()]
            if not pending or time.monotonic() >= deadline:
                return
            time.sleep(min(0.1, self.poll_s * 2))

    def _reap_lost_segments(self) -> None:
        """Unlink shared-memory segments published by nodes that died.

        ``GraphPlane`` cleans up via atexit, which a SIGKILL skips; the
        node's beats carried its segment names precisely so the
        coordinator can sweep them and leave no shm orphans.
        """
        from repro.graph import shm

        beats = self.queue.read_beats()
        for node, segments in self._peer_segments.items():
            beat = beats.get(node)
            if beat is not None and beat.done and node not in self._lost_nodes:
                continue  # clean exit unlinked its own segments
            for name in segments:
                if shm.unlink_segment(name) and self.tel.enabled:
                    self.tel.inc("distqueue_segments_reaped_total")
                    self.tel.emit("distqueue", action="segment-reaped",
                                  node=node, segment=name)
