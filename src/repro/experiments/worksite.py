"""The worksite: worker processes, heartbeats, and the supervisor's
view of both.

The supervised scheduler (:mod:`repro.experiments.scheduler`) splits
cleanly into pure decision logic (the task board) and the messy
process-management substrate this module owns:

- **WorkerCrew** — long-lived ``multiprocessing.Process`` workers, one
  dispatch queue each plus one shared result queue. Unlike
  :class:`~concurrent.futures.ProcessPoolExecutor`, a SIGKILLed worker
  does not poison the pool: the supervisor detects the death, replaces
  the worker, and re-dispatches its task.
- **Heartbeats** — each worker runs a daemon thread writing a one-line
  JSON beat file (``hb-<worker>.json``, atomic tmp + ``os.replace``)
  every ``heartbeat_every`` seconds, tagged with the task and lease
  epoch it is executing. The supervisor reads the beats to renew
  leases, so a *busy* worker on a legitimately slow cell never expires
  while a *dead or hung* one does.
- **Stall injection** — ``REPRO_INJECT_STALL`` simulates the hung-
  worker failure mode SIGKILL cannot: the worker stays alive but stops
  making progress *and stops heartbeating*, which is exactly what the
  lease-expiry path must detect.

Workers ignore SIGINT (the supervisor decides when to stop
dispatching) and execute tasks through the same crash-isolation
boundary as the old pool (`_isolated_execute`), so a task-level fault
comes back as a recorded failure, never as a dead worker.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Stall injection: ``"<substring>:<seconds>"`` — a worker dispatched a
#: task whose id contains the substring sleeps that long *with
#: heartbeats suspended* before executing, simulating a hung worker.
INJECT_STALL_ENV = "REPRO_INJECT_STALL"
#: Optional token directory bounding stall injection (same atomic
#: claim-one-file protocol as ``REPRO_CHAOS_KILL``). Unset, every
#: matching dispatch stalls — which is how a poison cell is simulated.
INJECT_STALL_TOKENS_ENV = "REPRO_INJECT_STALL_TOKENS"

_HEARTBEAT_PREFIX = "hb-"


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Heartbeat:
    """One worker's latest beat, as read back by the supervisor."""

    worker: int
    pid: int
    ts: float
    task_id: "str | None"
    epoch: int


class Worksite:
    """The heartbeat directory shared by one build's supervisor and
    workers. Beat files are tiny, per-worker, and atomically replaced,
    so readers never see torn JSON — and the whole directory is removed
    when the build ends (leaked beat files would be litter *and* a
    stale-freshness trap for a later build)."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def heartbeat_path(self, worker: int) -> Path:
        return self.root / f"{_HEARTBEAT_PREFIX}{worker}.json"

    def read_heartbeats(self) -> "dict[int, Heartbeat]":
        """Latest beat per worker; unreadable files are skipped (the
        writer will replace them within one beat interval)."""
        beats: dict[int, Heartbeat] = {}
        for path in self.root.glob(f"{_HEARTBEAT_PREFIX}*.json"):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                beat = Heartbeat(
                    worker=int(data["worker"]), pid=int(data["pid"]),
                    ts=float(data["ts"]),
                    task_id=data.get("task_id"),
                    epoch=int(data.get("epoch", 0)))
            except (OSError, ValueError, KeyError, TypeError):
                continue
            beats[beat.worker] = beat
        return beats

    def remove_heartbeat(self, worker: int) -> None:
        self.heartbeat_path(worker).unlink(missing_ok=True)

    def cleanup(self) -> None:
        for path in self.root.glob(f"{_HEARTBEAT_PREFIX}*"):
            path.unlink(missing_ok=True)
        try:
            self.root.rmdir()
        except OSError:
            pass  # foreign files: leave the directory for inspection


class HeartbeatWriter:
    """Worker-side beat emitter (daemon thread).

    ``suspend()`` models a hang for stall injection: the thread keeps
    running but writes nothing, so the supervisor's view goes stale
    exactly as it would for a worker stuck in an uninterruptible call.
    """

    def __init__(self, path: Path, worker: int,
                 every_s: float = 1.0) -> None:
        self.path = path
        self.worker = worker
        self.every_s = max(0.05, float(every_s))
        self._task_id: "str | None" = None
        self._epoch = 0
        self._suspended = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def start(self) -> None:
        self.beat()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=f"heartbeat-{self.worker}")
        self._thread.start()

    def set_task(self, task_id: "str | None", epoch: int = 0) -> None:
        """Tag subsequent beats with the task being executed, beating
        immediately so the supervisor sees the handoff right away."""
        with self._lock:
            self._task_id = task_id
            self._epoch = epoch
        self.beat()

    def suspend(self) -> None:
        with self._lock:
            self._suspended = True

    def resume(self) -> None:
        with self._lock:
            self._suspended = False
        self.beat()

    def beat(self) -> None:
        with self._lock:
            if self._suspended:
                return
            payload = {"worker": self.worker, "pid": os.getpid(),
                       "ts": time.time(), "task_id": self._task_id,
                       "epoch": self._epoch}
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            tmp.unlink(missing_ok=True)  # missed beat; next one retries

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._stop.wait(self.every_s):
            self.beat()


# ----------------------------------------------------------------------
# Task / result envelopes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskEnvelope:
    """One dispatched lease: which task, under which epoch, plus the
    worker-side payload (a PlannedRun for ``run`` tasks, a GraphSpec
    for ``materialize`` tasks)."""

    task_id: str
    epoch: int
    kind: str
    payload: Any


@dataclass(frozen=True)
class ResultEnvelope:
    """What a worker sends back. ``ok=False`` means the *harness*
    failed (unpicklable result, worksite bug) — task-level faults come
    back ``ok=True`` with the failure recorded inside the value."""

    task_id: str
    epoch: int
    worker: int
    ok: bool
    value: Any = None
    error: Any = None  # RunFailure when ok is False


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerContext:
    """Build-wide configuration forked into every worker once, instead
    of riding on every task payload like the old pool tuple did."""

    store_root: "str | Path | None"
    profile: Any
    timeout_s: "float | None"
    retries: "int | None"
    resume: bool
    health_policy: "str | None"
    health_check_every: "int | None"
    checkpoint_dir: "str | Path | None"
    checkpoint_every: "str | None"
    graph_cache_bytes: "int | None"
    obs_level: "str | None"
    obs_dir: "str | None"
    run_id: "str | None"
    #: Distributed builds: the node this worker belongs to, stamped
    #: into its telemetry events. None on single-node builds.
    node: "str | None" = None
    #: Serialized build-root :class:`~repro.obs.tracing.TraceContext`;
    #: workers re-install it so their cell spans derive the same
    #: deterministic ids as the parent (causal re-linking across
    #: dispatches and resumes).
    trace: "dict | None" = None


def _maybe_stall(envelope: TaskEnvelope, beats: HeartbeatWriter) -> None:
    """Honor ``REPRO_INJECT_STALL`` for a matching task id."""
    spec = os.environ.get(INJECT_STALL_ENV)
    if not spec or ":" not in spec:
        return
    substring, _, seconds = spec.rpartition(":")
    if not substring or substring not in envelope.task_id:
        return
    token_dir = os.environ.get(INJECT_STALL_TOKENS_ENV)
    if token_dir:
        from repro.engine.checkpoint import claim_token

        if not claim_token(Path(token_dir)):
            return
    beats.suspend()
    time.sleep(float(seconds))
    beats.resume()


def _execute_envelope(envelope: TaskEnvelope, ctx: WorkerContext) -> Any:
    """Run one task body. Imports are lazy: the worksite stays loadable
    without pulling the whole corpus module into importers that only
    need the heartbeat types."""
    from repro.experiments import corpus as corpus_mod
    from repro.experiments.results import ResultStore
    from repro.obs.telemetry import get_telemetry

    if envelope.kind == "materialize":
        spec, manifest = envelope.payload
        if manifest is not None:
            from repro.graph import shm

            shm.install_manifest(manifest)
        return corpus_mod._materialize_worker(spec)
    if envelope.kind != "run":
        raise ValueError(f"unknown task kind {envelope.kind!r}")
    planned, manifest = envelope.payload
    if manifest is not None:
        from repro.graph import shm

        shm.install_manifest(manifest)
    store = (ResultStore(ctx.store_root)
             if ctx.store_root is not None else None)
    result = corpus_mod._isolated_execute(
        planned, ctx.profile, store, ctx.timeout_s, ctx.retries,
        ctx.resume, ctx.health_policy, ctx.health_check_every,
        ctx.checkpoint_dir, ctx.checkpoint_every)
    tel = get_telemetry()
    if tel.enabled:
        # Per-cell metric delta rides back on the result; the worker
        # registry restarts at zero (a cumulative snapshot per cell
        # would grow O(cells^2), see DESIGN.md S12).
        result.obs_snapshot = tel.drain()
    return result


def _arm_parent_death_signal() -> None:
    """Ask the kernel to SIGKILL this worker when its parent dies.

    A SIGKILLed supervisor (or node agent — the distributed chaos runs
    kill whole agents) gets no chance to run its crew shutdown, and the
    ``daemon`` flag only helps on clean interpreter exit. On Linux,
    ``PR_SET_PDEATHSIG`` closes that gap at the kernel level; elsewhere
    the ppid check in the worker loop is the (slower) fallback.
    """
    try:
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0)
    except Exception:  # pragma: no cover - non-Linux platforms
        pass


def worker_main(worker: int, task_queue, result_queue,
                worksite_root: str, heartbeat_every: float,
                ctx: WorkerContext) -> None:
    """Crew worker loop: beat, take a lease, execute, send the result.

    SIGINT is ignored (the supervisor owns shutdown). *Any* exception
    escaping a task body — already rare, since ``_isolated_execute`` is
    its own boundary — comes back as an ``ok=False`` envelope rather
    than killing the loop. A worker whose parent vanished exits on its
    own: PDEATHSIG kills it instantly on Linux, and the reparenting
    check below catches the rest between tasks.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _arm_parent_death_signal()
    import queue as queue_mod

    from repro.experiments.corpus import _configure_worker_obs
    from repro.experiments.failures import RunFailure
    from repro.experiments.graph_cache import configure_default_cache

    _configure_worker_obs(ctx.obs_level, ctx.obs_dir, ctx.run_id,
                          node=ctx.node, trace=ctx.trace)
    configure_default_cache(ctx.graph_cache_bytes)
    site = Worksite(worksite_root)
    beats = HeartbeatWriter(site.heartbeat_path(worker), worker,
                            heartbeat_every)
    beats.start()
    try:
        while True:
            try:
                envelope = task_queue.get(timeout=5.0)
            except queue_mod.Empty:
                if os.getppid() == 1:
                    break  # orphaned: the parent died without PDEATHSIG
                continue
            if envelope is None:
                break
            beats.set_task(envelope.task_id, envelope.epoch)
            try:
                _maybe_stall(envelope, beats)
                value = _execute_envelope(envelope, ctx)
                result_queue.put(ResultEnvelope(
                    envelope.task_id, envelope.epoch, worker, True,
                    value=value))
            except BaseException as exc:
                try:
                    result_queue.put(ResultEnvelope(
                        envelope.task_id, envelope.epoch, worker, False,
                        error=RunFailure.from_exception(exc)))
                except Exception:
                    break  # result queue gone: supervisor is shutting down
            beats.set_task(None, 0)
    finally:
        beats.stop()
        site.remove_heartbeat(worker)


# ----------------------------------------------------------------------
# Worker crew (supervisor side)
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    worker: int
    process: Any
    queue: Any
    #: Task id the supervisor believes this worker is executing.
    task_id: "str | None" = None
    epoch: int = 0
    dispatched: int = field(default=0)

    @property
    def idle(self) -> bool:
        return self.task_id is None

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerCrew:
    """Spawn, feed, reap, and replace the build's worker processes."""

    def __init__(self, n_workers: int, worksite: Worksite,
                 ctx: WorkerContext, heartbeat_every: float) -> None:
        import multiprocessing as mp

        try:
            self._mp = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = mp.get_context()
        self.worksite = worksite
        self.ctx = ctx
        self.heartbeat_every = heartbeat_every
        self.results = self._mp.Queue()
        self.workers: "dict[int, WorkerHandle]" = {}
        self.replaced = 0
        self._next_id = 0
        for _ in range(n_workers):
            self.spawn()

    def spawn(self) -> WorkerHandle:
        worker = self._next_id
        self._next_id += 1
        queue = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(worker, queue, self.results, str(self.worksite.root),
                  self.heartbeat_every, self.ctx),
            name=f"repro-crew-{worker}", daemon=True)
        process.start()
        handle = WorkerHandle(worker, process, queue)
        self.workers[worker] = handle
        return handle

    def dispatch(self, handle: WorkerHandle,
                 envelope: TaskEnvelope) -> None:
        handle.task_id = envelope.task_id
        handle.epoch = envelope.epoch
        handle.dispatched += 1
        handle.queue.put(envelope)

    def mark_idle(self, worker: int) -> None:
        handle = self.workers.get(worker)
        if handle is not None:
            handle.task_id = None
            handle.epoch = 0

    def idle_workers(self) -> "list[WorkerHandle]":
        return [h for h in self.workers.values()
                if h.idle and h.alive()]

    def dead_workers(self) -> "list[WorkerHandle]":
        return [h for h in self.workers.values() if not h.alive()]

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL a (presumed hung) worker and reap it."""
        if handle.alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        self._close(handle)
        self.workers.pop(handle.worker, None)
        self.worksite.remove_heartbeat(handle.worker)

    def remove(self, handle: WorkerHandle) -> None:
        """Reap a worker that already died on its own."""
        handle.process.join(timeout=5.0)
        self._close(handle)
        self.workers.pop(handle.worker, None)
        self.worksite.remove_heartbeat(handle.worker)

    def replace(self, handle: WorkerHandle) -> WorkerHandle:
        self.remove(handle)
        self.replaced += 1
        return self.spawn()

    def poll_result(self, timeout: float) -> "ResultEnvelope | None":
        import queue as queue_mod

        try:
            return self.results.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def shutdown(self, *, kill: bool = False) -> None:
        """Stop every worker: politely (sentinel + join) or by SIGKILL
        when the build is bailing out and workers may be hung."""
        for handle in list(self.workers.values()):
            if kill or not handle.alive():
                self.kill(handle)
                continue
            try:
                handle.queue.put(None)
            except Exception:
                self.kill(handle)
        for handle in list(self.workers.values()):
            handle.process.join(timeout=5.0)
            if handle.alive():
                self.kill(handle)
            else:
                self._close(handle)
                self.workers.pop(handle.worker, None)
                self.worksite.remove_heartbeat(handle.worker)
        self.results.close()
        self.results.cancel_join_thread()

    def _close(self, handle: WorkerHandle) -> None:
        try:
            handle.queue.close()
            handle.queue.cancel_join_thread()
        except Exception:  # pragma: no cover - queue already torn down
            pass
        try:
            handle.process.close()
        except Exception:  # pragma: no cover - still running
            pass
