"""Per-process graph materialization with a byte-bounded LRU cache.

:func:`materialize_problem` is the single resolution path between a
:class:`~repro.experiments.config.GraphSpec` and a live
:class:`~repro.generators.problem.ProblemInstance`:

1. the shared-memory graph plane (:mod:`repro.graph.shm`) — zero-copy
   attach of a graph the corpus builder published;
2. this process's :class:`GraphCache` — inline builds and repeated
   :func:`~repro.behavior.run.run_computation` calls reuse graphs they
   already generated;
3. ``spec.generate()`` — the slow path, counted (see below) and
   inserted into the cache.

Resolved problems are shared across runs, so their domain inputs are
frozen read-only — algorithms only ever read inputs, and the graph's
CSR arrays are immutable already.

Testing hook: when ``$REPRO_COUNT_MATERIALIZE`` names a directory,
every actual ``generate()`` drops a unique token file there containing
the spec's cache key, so tests can assert each distinct graph is
materialized exactly once across a whole multi-process corpus build.
"""

from __future__ import annotations

import os
import uuid
from collections import OrderedDict

import numpy as np

from repro.generators.problem import ProblemInstance
from repro.graph import shm

#: Directory receiving one token file per actual materialization.
COUNT_MATERIALIZE_ENV = "REPRO_COUNT_MATERIALIZE"
#: Overrides the default cache capacity; ``0`` disables caching.
CACHE_BYTES_ENV = "REPRO_GRAPH_CACHE_BYTES"
#: Default capacity — generous for smoke/paper profiles, bounded so a
#: long-lived process cannot accumulate every graph it ever touched.
DEFAULT_CACHE_BYTES = 256 << 20


def problem_nbytes(problem: ProblemInstance) -> int:
    """Approximate resident size: CSR arrays plus array inputs."""
    total = problem.graph.memory_bytes()
    for value in problem.inputs.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


class GraphCache:
    """Byte-bounded LRU over materialized problems, keyed by spec key.

    A capacity of ``0`` disables caching entirely (every miss is a
    regenerate); problems larger than the whole capacity are never
    admitted.
    """

    def __init__(self, capacity_bytes: "int | None" = None) -> None:
        if capacity_bytes is None:
            capacity_bytes = int(os.environ.get(CACHE_BYTES_ENV,
                                                DEFAULT_CACHE_BYTES))
        self.capacity_bytes = max(0, int(capacity_bytes))
        self._entries: "OrderedDict[str, tuple[ProblemInstance, int]]" = \
            OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> "ProblemInstance | None":
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: str, problem: ProblemInstance) -> None:
        size = problem_nbytes(problem)
        if size > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old[1]
        self._entries[key] = (problem, size)
        self.used_bytes += size
        while self.used_bytes > self.capacity_bytes and self._entries:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0


_default_cache: "GraphCache | None" = None


def default_cache() -> GraphCache:
    """The process-wide cache (capacity from the environment)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = GraphCache()
    return _default_cache


def configure_default_cache(capacity_bytes: "int | None") -> None:
    """Resize the process-wide cache; None keeps the current one.

    A no-op when the capacity is unchanged, so pool workers calling
    this per cell do not flush the cache they are benefiting from.
    """
    global _default_cache
    if capacity_bytes is None:
        return
    capacity_bytes = max(0, int(capacity_bytes))
    if _default_cache is not None \
            and _default_cache.capacity_bytes == capacity_bytes:
        return
    _default_cache = GraphCache(capacity_bytes)


def _count_materialization(key: str) -> None:
    root = os.environ.get(COUNT_MATERIALIZE_ENV)
    if not root:
        return
    try:
        os.makedirs(root, exist_ok=True)
        token = os.path.join(
            root, f"{os.getpid()}-{uuid.uuid4().hex[:8]}.token")
        with open(token, "w", encoding="utf-8") as fh:
            fh.write(key)
    except OSError:
        pass


def freeze_inputs(problem: ProblemInstance) -> ProblemInstance:
    """Mark array inputs read-only so the problem is safely shareable."""
    for value in problem.inputs.values():
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
    return problem


def materialize_problem(spec) -> tuple[ProblemInstance, str]:
    """Resolve a spec to a problem; returns ``(problem, source)``.

    ``source`` is ``"shm"`` (graph plane), ``"cache"`` (this process's
    LRU) or ``"generated"`` (actually materialized here and now).
    """
    from repro.obs.telemetry import get_telemetry

    key = spec.cache_key()
    problem = shm.resolve(key)
    if problem is not None:
        source = "shm"
    else:
        cache = default_cache()
        problem = cache.get(key)
        if problem is not None:
            source = "cache"
        else:
            problem = freeze_inputs(spec.generate())
            _count_materialization(key)
            cache.put(key, problem)
            source = "generated"
    tel = get_telemetry()
    if tel.enabled:
        tel.inc("graph_resolutions_total", source=source)
    return problem, source
