"""The behavior corpus: every run of the experiment matrix, executed,
cached, and projected into the behavior space.

Paper Section 5.2: "for eleven algorithms, we have a total of 215 runs
over 11 algorithms from across three application domains ...
Unfortunately, 5 runs of AD with largest graph size failed." The
corpus reproduces exactly that shape: 11 × 20 planned runs with AD's
largest-size runs failing on the engine memory budget.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.behavior.metrics import BehaviorMetrics, compute_metrics
from repro.behavior.run import run_computation
from repro.behavior.space import BehaviorVector, normalize_corpus
from repro.behavior.trace import RunTrace
from repro.behavior.validate import validate_trace
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    SnapshotStore,
)
from repro.experiments.config import (
    ExperimentMatrix,
    GraphSpec,
    PlannedRun,
    Profile,
    get_profile,
)
from repro.experiments.failures import RunFailure, full_jitter_backoff
from repro.experiments.graph_cache import (
    configure_default_cache,
    materialize_problem,
)
from repro.experiments.results import ResultStore
from repro.obs.events import (
    EVENTS_FILENAME,
    merge_sinks,
    worker_sink_path,
)
from repro.obs.export import write_prometheus, write_telemetry_json
from repro.obs.telemetry import (
    OBS_DIR_ENV,
    configure,
    deactivate,
    get_telemetry,
    resolve_obs_level,
)
from repro.obs.tracing import TraceContext, derive_run_id


@dataclass
class CorpusRun:
    """One executed (or failed) cell of the corpus."""

    algorithm: str
    spec: GraphSpec
    trace: "RunTrace | None"
    metrics: "BehaviorMetrics | None"
    failure: "RunFailure | None" = None
    #: ``"run"`` if this result was (re-)executed in this build,
    #: ``"cache"`` if it was loaded from the result store.
    source: str = "run"
    #: Seconds spent persisting the trace to the result store (only for
    #: executed cells; the trace itself carries ``materialize_s`` and
    #: ``engine_s`` in its meta).
    store_s: "float | None" = None
    #: Pool mode only: the worker registry's metric delta for this
    #: cell (``Telemetry.drain()``), merged into the parent registry
    #: on collection and then dropped.
    obs_snapshot: "dict | None" = None

    @property
    def ok(self) -> bool:
        return self.trace is not None

    @property
    def tag(self) -> tuple:
        """Run identity carried onto behavior vectors:
        ``(algorithm, nedges, alpha)``."""
        return (self.algorithm, self.spec.nedges, self.spec.alpha)


@dataclass
class BehaviorCorpus:
    """All successful runs plus the recorded failures."""

    profile: Profile
    runs: list[CorpusRun] = field(default_factory=list)
    failures: list[CorpusRun] = field(default_factory=list)
    build_seconds: float = 0.0
    #: True when the build stopped early on a stop request (SIGINT);
    #: cells not reached are simply absent and a rerun picks them up.
    interrupted: bool = False
    #: Whether the shared-memory graph plane was active for this build.
    graph_plane: bool = False
    #: Graphs pre-materialized and published, and the time that took.
    premat_graphs: int = 0
    premat_seconds: float = 0.0
    #: Telemetry identifiers when the build ran with ``obs != "off"``:
    #: the run id stamped on every event, and the directory holding the
    #: event log plus the exported ``telemetry.json``/``metrics.prom``.
    run_id: "str | None" = None
    obs_dir: "str | None" = None
    #: Supervised-scheduler accounting (multi-worker builds): leases
    #: lost to dead/hung workers, workers replaced, speculative shadow
    #: dispatches, and whether the circuit breaker degraded the build
    #: to inline single-process execution.
    lease_expiries: int = 0
    workers_replaced: int = 0
    speculative_runs: int = 0
    degraded_to_inline: bool = False
    #: Quarantine files removed by the post-build retention sweep,
    #: keyed by store ("results", "snapshots").
    quarantine_swept: "dict[str, int]" = field(default_factory=dict)
    #: Distributed-queue accounting (``build_corpus(distributed=...)``):
    #: whether this build ran over the shared work queue, how many
    #: distinct node agents ever registered, how many were declared
    #: lost (fenced), how many store attempts were rejected by an epoch
    #: fence across all nodes, how many revoked leases were
    #: re-dispatched, how many done markers were refused for carrying a
    #: fenced epoch, and how many queue files survived the final sweep
    #: (0 on a clean build).
    distributed: bool = False
    nodes_seen: int = 0
    nodes_lost: int = 0
    stale_epoch_rejections: int = 0
    queue_requeues: int = 0
    stale_done_markers: int = 0
    queue_leftovers: int = 0

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_executed(self) -> int:
        """Cells actually (re-)executed in this build (not cache hits)."""
        return sum(1 for r in self.runs + self.failures
                   if r.source == "run")

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.runs + self.failures
                   if r.source == "cache")

    @property
    def unexpected_failures(self) -> "list[CorpusRun]":
        """Failures that are harness faults (crash/timeout/numeric/...)
        rather than the paper's by-design out-of-budget runs."""
        return [f for f in self.failures
                if f.failure is not None and not f.failure.expected]

    @property
    def degraded_runs(self) -> "list[CorpusRun]":
        """Runs stopped early by a convergence watchdog under the
        ``degrade`` health policy. Their partial traces are kept for
        inspection but excluded from :meth:`vectors` — a truncated
        trace would distort the ensemble search's behavior space."""
        return [r for r in self.runs
                if r.trace is not None and r.trace.degraded]

    def vectors(self, *, scheme: str = "max") -> list[BehaviorVector]:
        """Corpus-normalized behavior vectors, tagged with run identity
        (healthy runs only; degraded partial traces are excluded)."""
        healthy = [r for r in self.runs
                   if r.trace is None or not r.trace.degraded]
        metrics = [r.metrics for r in healthy]
        tags = [r.tag for r in healthy]
        return normalize_corpus(metrics, scheme=scheme, tags=tags)

    def by_algorithm(self, algorithm: str) -> list[CorpusRun]:
        return [r for r in self.runs if r.algorithm == algorithm]

    def by_structure(self, nedges: int, alpha: float) -> list[CorpusRun]:
        """Runs sharing one graph structure (size, α) across domains —
        the paper's single-graph ensembles pair each GA structure with
        the same-parameter clustering and CF generators."""
        return [r for r in self.runs
                if r.spec.nedges == nedges and r.spec.alpha == alpha]

    def algorithms(self) -> list[str]:
        return sorted({r.algorithm for r in self.runs})

    def structures(self) -> list[tuple]:
        """Distinct (nedges, alpha) pairs present, GA scale only."""
        return sorted({(r.spec.nedges, r.spec.alpha) for r in self.runs
                       if r.spec.domain in ("ga", "clustering")})

    def timing_decomposition(self) -> "dict[str, float] | None":
        """Aggregate per-cell timings over executed cells, or None when
        nothing was executed (a fully cached build)."""
        executed = [r for r in self.runs + self.failures
                    if r.source == "run" and r.trace is not None
                    and "materialize_s" in r.trace.meta]
        if not executed:
            return None
        return {
            "cells": float(len(executed)),
            "materialize_s": sum(r.trace.meta["materialize_s"]
                                 for r in executed),
            "engine_s": sum(r.trace.meta["engine_s"] for r in executed),
            "store_s": sum(r.store_s or 0.0 for r in executed),
            "graph_reuses": float(sum(
                1 for r in executed
                if r.trace.meta.get("graph_source") in ("shm", "cache"))),
        }

    def summary(self) -> str:
        degraded = self.degraded_runs
        plane = ", graph plane on" if self.graph_plane else ""
        lines = [
            f"Behavior corpus [{self.profile.name}]: {self.n_runs} runs, "
            f"{len(self.failures)} failed, "
            f"{len(degraded)} degraded, "
            f"built in {self.build_seconds:.1f}s{plane}",
        ]
        if self.graph_plane:
            lines.append(f"  graph plane: {self.premat_graphs} graphs "
                         f"pre-materialized in {self.premat_seconds:.2f}s")
        if (self.lease_expiries or self.workers_replaced
                or self.speculative_runs or self.degraded_to_inline):
            mode = (" -> degraded to inline execution"
                    if self.degraded_to_inline else "")
            lines.append(f"  scheduler: {self.lease_expiries} lease "
                         f"expiries, {self.workers_replaced} workers "
                         f"replaced, {self.speculative_runs} speculative "
                         f"dispatches{mode}")
        if self.distributed:
            lines.append(f"  distributed: {self.nodes_seen} nodes seen, "
                         f"{self.nodes_lost} lost, "
                         f"{self.queue_requeues} requeues, "
                         f"{self.stale_epoch_rejections} stale-epoch "
                         f"stores rejected")
            if self.stale_done_markers or self.queue_leftovers:
                lines.append(f"  distributed anomalies: "
                             f"{self.stale_done_markers} stale done "
                             f"markers, {self.queue_leftovers} queue "
                             f"files left behind")
        if self.quarantine_swept:
            swept = ", ".join(f"{name} {count}" for name, count
                              in sorted(self.quarantine_swept.items()))
            lines.append(f"  quarantine sweep: removed {swept}")
        timing = self.timing_decomposition()
        if timing is not None:
            lines.append(
                f"  timing: materialize {timing['materialize_s']:.2f}s + "
                f"engine {timing['engine_s']:.2f}s + "
                f"store {timing['store_s']:.2f}s over "
                f"{timing['cells']:.0f} executed cells "
                f"({timing['graph_reuses']:.0f} graph reuses)")
        for run in degraded:
            health = run.trace.health
            lines.append(f"  DEGRADED {run.algorithm}@{run.spec.label}: "
                         f"{health.get('condition', '?')} at iteration "
                         f"{health.get('iteration', '?')}")
        for alg in self.algorithms():
            runs = self.by_algorithm(alg)
            iters = [r.trace.n_iterations for r in runs]
            lines.append(f"  {alg:<10} {len(runs):>3} runs, "
                         f"iterations {min(iters)}..{max(iters)}")
        for fail in self.failures:
            lines.append(f"  FAILED {fail.algorithm}@{fail.spec.label}: "
                         f"{fail.failure}")
        if self.obs_dir is not None:
            lines.append(f"  telemetry: {self.obs_dir} "
                         f"(inspect with `repro stats {self.obs_dir}`)")
        return "\n".join(lines)


def run_cache_key(planned: PlannedRun, profile: Profile) -> str:
    """The store key identifying one corpus cell under one profile."""
    return f"{profile.name}-{planned.algorithm}-{planned.spec.cache_key()}"


def execute_planned_run(
    planned: PlannedRun,
    profile: Profile,
    store: "ResultStore | None" = None,
    *,
    timeout_s: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    health_policy: "str | None" = None,
    health_check_every: "int | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "str | None" = None,
) -> CorpusRun:
    """Execute one cell under its causal span, then restore the
    ambient context (see :func:`_execute_cell` for the semantics).

    The cell span id is derived from the build trace + the cell's
    cache key, so every attempt at this cell — retries, lease
    re-dispatches after a SIGKILL, resumed builds — lands on the same
    span node of the trace tree.
    """
    tel = get_telemetry()
    base_trace = tel.trace
    if base_trace is not None:
        tel.set_trace(
            base_trace.child("cell", run_cache_key(planned, profile)))
    try:
        return _execute_cell(planned, profile, store,
                             timeout_s=timeout_s, retries=retries,
                             resume=resume, health_policy=health_policy,
                             health_check_every=health_check_every,
                             checkpoint_dir=checkpoint_dir,
                             checkpoint_every=checkpoint_every)
    finally:
        tel.set_trace(base_trace)


def _execute_cell(
    planned: PlannedRun,
    profile: Profile,
    store: "ResultStore | None" = None,
    *,
    timeout_s: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    health_policy: "str | None" = None,
    health_check_every: "int | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "str | None" = None,
) -> CorpusRun:
    """Execute one cell (or fetch it from the store), profile-configured.

    This is the corpus runner's crash-isolation boundary: *any*
    exception escaping the run — not just the paper's
    :class:`~repro._util.errors.ResourceLimitError` — is classified
    into a :class:`~repro.experiments.failures.RunFailure` and recorded,
    so one faulting cell can never abort the other ~219.

    Parameters
    ----------
    timeout_s:
        Per-run wall-clock limit (default: the profile's
        ``run_timeout_s``); exceeding it records a ``timeout`` failure.
    retries:
        Extra attempts for transient failure kinds (timeout, crash,
        cache-corrupt), with exponential backoff starting at the
        profile's ``retry_backoff_s``. Default: the profile's
        ``max_retries``. Memory-budget failures are deterministic and
        never retried.
    resume:
        When True, a *cached* transient failure is re-executed instead
        of being replayed from the store (cached successes and
        memory-budget failures are still reused).
    health_policy, health_check_every:
        Run-health overrides (see
        :class:`~repro.engine.engine.EngineOptions`); None keeps the
        engine defaults (``strict``, every iteration).
    checkpoint_dir, checkpoint_every:
        Iteration-level checkpointing for the cell (see
        :mod:`repro.engine.checkpoint`). ``checkpoint_every`` is a
        :meth:`~repro.engine.checkpoint.CheckpointPolicy.parse` spec;
        setting it snapshots the run's state to ``checkpoint_dir``
        (default: ``$REPRO_CHECKPOINT_DIR`` or ``./.repro_checkpoints``)
        so a timed-out or crashed attempt *resumes from its last
        snapshot* instead of restarting, and the retry budget charges
        only attempts that made no forward progress.
    """
    options: dict = {"memory_budget_bytes": profile.memory_budget_bytes}
    if health_policy is not None:
        options["health_policy"] = health_policy
    if health_check_every is not None:
        options["health_check_every"] = health_check_every
    params: dict = {}
    if planned.algorithm == "diameter":
        params["n_hashes"] = profile.ad_n_hashes
    key = run_cache_key(planned, profile)
    if timeout_s is None:
        timeout_s = profile.run_timeout_s
    if retries is None:
        retries = profile.max_retries

    snap_store: "SnapshotStore | None" = None
    if checkpoint_every is not None:
        snap_store = SnapshotStore(checkpoint_dir)
        options["checkpoint"] = CheckpointConfig(
            store=snap_store,
            policy=CheckpointPolicy.parse(checkpoint_every),
            key=key,
        )

    tel = get_telemetry()
    cell = f"{planned.algorithm}@{planned.spec.label}"

    if store is not None:
        cached = store.load(key)  # corrupt entries quarantine -> miss
        if cached is not None:
            if tel.enabled:
                status = "degraded" if cached.degraded else "ok"
                tel.inc("corpus_cells_total", status=status,
                        source="cache")
                tel.emit("cell_end", cell=cell, status=status,
                         source="cache",
                         graph_source=cached.meta.get("graph_source"))
            return CorpusRun(planned.algorithm, planned.spec, cached,
                             compute_metrics(cached), source="cache")
        prior = store.load_failure(key)
        if prior is not None and not (resume and prior.retryable):
            if tel.enabled:
                tel.inc("corpus_cells_total", status="failed",
                        source="cache")
                tel.emit("cell_end", cell=cell, status="failed",
                         source="cache", failure_kind=prior.kind)
            return CorpusRun(planned.algorithm, planned.spec, None, None,
                             failure=prior, source="cache")

    def snapshot_progress() -> int:
        if snap_store is None:
            return -1
        return snap_store.latest_iteration(key) or -1

    if tel.enabled:
        tel.set_context(cell=cell, attempt=1)
        # ``key`` lets the critical-path analyser join this cell to
        # its scheduler task ("run:<key>") for lease-latency splits.
        tel.emit("cell_start", key=key, timeout_s=timeout_s,
                 retries=retries)
    attempts = 0
    stalled_attempts = 0
    last_progress = snapshot_progress()
    while True:
        attempts += 1
        if tel.enabled:
            tel.set_context(cell=cell, attempt=attempts)
        try:
            trace = run_computation(planned.algorithm, planned.spec,
                                    params=params, options=options,
                                    timeout_s=timeout_s)
            # Every completed trace must satisfy the structural
            # invariants; a violation records a "numeric" failure for
            # the cell rather than poisoning the corpus.
            validate_trace(trace)
        except Exception as exc:  # crash-isolation boundary
            failure = RunFailure.from_exception(exc, attempts=attempts)
            # The retry budget measures *forward progress*, not
            # attempts: an attempt that advanced the cell's snapshot
            # (more completed iterations on disk) resets the budget,
            # because resuming from further along is not spinning.
            progress = snapshot_progress()
            if progress > last_progress:
                last_progress = progress
                stalled_attempts = 0
            else:
                stalled_attempts += 1
            if failure.retryable and stalled_attempts <= retries:
                # Full jitter decorrelates simultaneously failing
                # workers (deterministic doubling retried them in
                # lockstep); seeding from the cache key keeps one
                # cell's schedule reproducible.
                backoff = full_jitter_backoff(
                    profile.retry_backoff_s, attempts, key=key)
                if tel.enabled:
                    tel.inc("corpus_retries_total")
                    tel.emit("retry", failure_kind=failure.kind,
                             backoff_s=backoff)
                time.sleep(backoff)
                continue
            if store is not None:
                store.save_failure(key, failure)
            if tel.enabled:
                tel.inc("corpus_failures_total", kind=failure.kind)
                tel.inc("corpus_cells_total", status="failed",
                        source="run")
                tel.emit("cell_end", status="failed", source="run",
                         failure_kind=failure.kind, attempts=attempts)
                tel.set_context()
            return CorpusRun(planned.algorithm, planned.spec, None, None,
                             failure=failure)
        store_s = 0.0
        if store is not None:
            with tel.span("corpus_store",
                          algorithm=planned.algorithm) as store_span:
                store.save(key, trace)
            store_s = store_span.seconds
        if tel.enabled:
            status = "degraded" if trace.degraded else "ok"
            mat_s = float(trace.meta.get("materialize_s", 0.0))
            eng_s = float(trace.meta.get("engine_s", 0.0))
            tel.inc("corpus_cells_total", status=status, source="run")
            tel.inc("corpus_cell_seconds_total", mat_s,
                    phase="materialize")
            tel.inc("corpus_cell_seconds_total", eng_s, phase="engine")
            tel.inc("corpus_cell_seconds_total", store_s, phase="store")
            tel.observe("corpus_cell_seconds", mat_s + eng_s + store_s,
                        algorithm=planned.algorithm)
            tel.record_peak_rss()
            tel.emit("cell_end", status=status, source="run",
                     attempts=attempts, materialize_s=mat_s,
                     engine_s=eng_s, store_s=store_s,
                     graph_source=trace.meta.get("graph_source"),
                     wall_s=float(trace.wall_time_s))
            tel.set_context()
        return CorpusRun(planned.algorithm, planned.spec, trace,
                         compute_metrics(trace), store_s=store_s)


def _isolated_execute(
    planned: PlannedRun,
    profile: Profile,
    store: "ResultStore | None",
    timeout_s: "float | None",
    retries: "int | None",
    resume: bool,
    health_policy: "str | None" = None,
    health_check_every: "int | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "str | None" = None,
) -> CorpusRun:
    """Run one cell, converting *any* escaping exception (store I/O,
    metric computation, ...) into a recorded crash failure."""
    try:
        return execute_planned_run(planned, profile, store,
                                   timeout_s=timeout_s, retries=retries,
                                   resume=resume,
                                   health_policy=health_policy,
                                   health_check_every=health_check_every,
                                   checkpoint_dir=checkpoint_dir,
                                   checkpoint_every=checkpoint_every)
    except Exception as exc:  # last-resort isolation
        return CorpusRun(planned.algorithm, planned.spec, None, None,
                         failure=RunFailure.from_exception(exc))


def _configure_worker_obs(obs_level: "str | None",
                          obs_dir: "str | None",
                          run_id: "str | None",
                          node: "str | None" = None,
                          trace: "dict | None" = None) -> None:
    """Point this pool worker's telemetry at its own sink file.

    Workers are forked, so they inherit the parent's registry (and its
    open handle on the parent's event log) — the first cell in each
    worker swaps that for a fresh registry writing to
    ``<obs_dir>/sinks/events-<pid>.jsonl``; later cells in the same
    worker keep accumulating into it.  *trace* (a serialized
    :class:`~repro.obs.tracing.TraceContext`) re-installs the build's
    root causal context so worker-side cell spans derive the same ids
    the parent would.
    """
    if not obs_level or obs_level == "off" or obs_dir is None:
        return
    tel = get_telemetry()
    if (tel.run_id == run_id and tel.events is not None
            and tel.events.path == worker_sink_path(obs_dir, os.getpid())):
        tel.set_node(node)
        tel.set_trace(TraceContext.from_dict(trace))
        return
    tel = configure(obs_level, run_id=run_id,
                    events_path=worker_sink_path(obs_dir, os.getpid()))
    tel.set_node(node)
    tel.set_trace(TraceContext.from_dict(trace))


def _materialize_worker(spec: GraphSpec) -> "tuple[str, object]":
    """Pre-materialization worker: generate one distinct graph.

    Runs through :func:`materialize_problem` so the materialization
    counter sees it and the worker's own cache keeps it warm; the
    problem is pickled back to the parent, which publishes it into the
    graph plane.
    """
    problem, _source = materialize_problem(spec)
    return spec.cache_key(), problem


def progress_event(run: CorpusRun, done: int, total: int) -> dict:
    """Structured progress payload for one completed cell.

    This is the single source of truth for progress reporting: the
    event goes to the telemetry log verbatim and the human-readable
    line is :func:`format_progress` applied to it — the two can never
    drift apart (and a regression test holds them together).
    """
    event: dict[str, Any] = {
        "done": done,
        "total": total,
        "algorithm": run.algorithm,
        "label": run.spec.label,
        "source": run.source,
    }
    if run.ok:
        if run.trace.degraded:
            event["status"] = "degraded"
            event["condition"] = run.trace.health.get("condition", "?")
        else:
            event["status"] = "ok"
        if run.source == "run":
            event["wall_s"] = float(run.trace.wall_time_s)
            meta = run.trace.meta
            if "materialize_s" in meta:
                event["materialize_s"] = float(meta["materialize_s"])
                event["engine_s"] = float(meta["engine_s"])
                event["store_s"] = float(run.store_s or 0.0)
                event["graph_source"] = str(meta.get("graph_source", "?"))
    else:
        event["status"] = "failed"
        # "kind" is reserved for the event kind itself ("progress"),
        # so the failure taxonomy kind travels as "failure_kind".
        event["failure_kind"] = run.failure.kind
        event["attempts"] = run.failure.attempts
        event["message"] = str(run.failure.message)
    return event


def format_progress(event: dict) -> str:
    """Render a :func:`progress_event` payload as the human line."""
    head = (f"[{event['done']}/{event['total']}] "
            f"{event['algorithm']}@{event['label']}:")
    if event["status"] != "failed":
        status = event["status"]
        if status == "degraded":
            status = f"degraded health={event.get('condition', '?')}"
        line = f"{head} status={status} source={event['source']}"
        if event["source"] == "run":
            line += f" t={event['wall_s']:.2f}s"
            if "materialize_s" in event:
                # Timing decomposition: a slow cell is attributable to
                # graph materialization vs engine vs store at a glance.
                line += (f" mat={event['materialize_s']:.2f}s"
                         f" eng={event['engine_s']:.2f}s"
                         f" st={event['store_s']:.2f}s"
                         f" graph={event['graph_source']}")
        return line
    return (f"{head} status=failed kind={event['failure_kind']} "
            f"attempts={event['attempts']} source={event['source']}: "
            f"{event['message']}")


def _progress_line(run: CorpusRun, done: int, total: int) -> str:
    """One structured progress line per completed cell."""
    return format_progress(progress_event(run, done, total))


def _affinity_order(plan: "list[PlannedRun]") -> "list[PlannedRun]":
    """Graph-affinity scheduling: order the plan graph-major.

    Cells sharing a spec run consecutively, so a worker's attached
    segment / cache entry stays warm; the sort is stable, keeping the
    algorithm order within one graph deterministic.
    """
    return sorted(plan, key=lambda planned: planned.spec.cache_key())


def _specs_needing_materialization(
    plan: "list[PlannedRun]",
    profile: Profile,
    store: "ResultStore | None",
    resume: bool,
) -> "dict[str, GraphSpec]":
    """Distinct specs with at least one cell that will actually execute.

    A fully cached rebuild pre-materializes nothing; a cell whose cached
    entry is a retryable failure counts as needing its graph only under
    ``resume`` (matching :func:`execute_planned_run`'s replay rules).
    """
    needed: dict[str, GraphSpec] = {}
    for planned in plan:
        spec_key = planned.spec.cache_key()
        if spec_key in needed:
            continue
        if store is not None:
            key = run_cache_key(planned, profile)
            if store.contains(key):
                if not resume:
                    continue
                prior = store.load_failure(key)
                if prior is None or not prior.retryable:
                    continue
        needed[spec_key] = planned.spec
    return needed


def build_corpus(
    profile: "Profile | str | None" = None,
    *,
    store: "ResultStore | None" = None,
    use_cache: bool = True,
    progress: "Callable[[str], None] | None" = None,
    workers: int = 1,
    timeout_s: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    health_policy: "str | None" = None,
    health_check_every: "int | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "str | None" = None,
    stop_requested: "Callable[[], bool] | None" = None,
    use_shm: bool = True,
    graph_cache_bytes: "int | None" = None,
    obs: "str | None" = None,
    obs_dir: "str | Path | None" = None,
    lease_timeout_s: "float | None" = None,
    heartbeat_every_s: "float | None" = None,
    max_lease_expiries: "int | None" = None,
    speculative: bool = False,
    gc_quarantine: "int | None" = None,
    distributed: "str | Path | None" = None,
) -> BehaviorCorpus:
    """Execute the full behavior-corpus plan (11 algorithms × 20 graphs).

    The build is resilient by construction: every cell runs inside a
    crash-isolation boundary, so a faulting (algorithm, graph) pair is
    recorded as a structured :class:`~repro.experiments.failures.RunFailure`
    while the remaining cells complete. Completed cells are checkpointed
    through the store as they finish, which makes builds resumable — a
    rerun after a crash (or with ``resume=True`` after recorded
    transient failures) re-executes only the missing/failed cells.

    Parameters
    ----------
    profile:
        A :class:`Profile`, profile name, or None (``$REPRO_PROFILE``).
    store:
        Result cache; defaults to the standard on-disk store when
        ``use_cache`` is true.
    progress:
        Optional callback receiving one structured line per completed
        run (status, cache/run source, failure kind and attempts).
    workers:
        Number of worker processes. The 220 runs are independent, so
        they parallelize embarrassingly; each worker writes through the
        shared on-disk store (atomic writer-unique temp files, hashed
        per-key filenames). 1 (default) runs inline.
    timeout_s, retries, resume, health_policy, health_check_every:
        Forwarded to :func:`execute_planned_run`.
    checkpoint_dir, checkpoint_every:
        Per-cell iteration-level checkpointing, forwarded to
        :func:`execute_planned_run`; with ``checkpoint_every`` set,
        killed/timed-out cells resume from their last snapshot on retry
        or on the next build.
    stop_requested:
        Optional callable polled between cells (the CLI's SIGINT hook).
        Once it returns True, no further cell is dispatched; in-flight
        pool cells finish (and flush their checkpoints), pending ones
        are cancelled, and the corpus comes back with
        ``interrupted=True``.
    use_shm:
        Enable the shared-memory graph plane for multi-worker builds:
        each distinct graph is pre-materialized once (in parallel),
        published into shared memory, and attached zero-copy by every
        worker. Off (or when shared memory is unavailable), workers
        fall back to per-process materialization through their own
        :class:`~repro.experiments.graph_cache.GraphCache`.
    graph_cache_bytes:
        Capacity of the per-process graph LRU cache (None keeps the
        default / ``$REPRO_GRAPH_CACHE_BYTES``; 0 disables caching).
    obs:
        Observability level — ``"off"`` (default), ``"basic"`` (sampled
        metrics), or ``"full"`` (every iteration timed + span events);
        None resolves ``$REPRO_OBS``. Telemetry is purely
        observational: behavior vectors under the ``unit`` work model
        are bit-identical across levels.
    obs_dir:
        Directory for the event log and exported ``telemetry.json`` /
        ``metrics.prom`` (default: ``$REPRO_OBS_DIR``, else ``obs/``
        under the result store, else ``./.repro_obs``).
    lease_timeout_s:
        Multi-worker builds only: how long a dispatched cell may go
        without a heartbeat before its lease expires and the cell is
        revoked from the (dead or hung) worker and re-dispatched
        (default 60s).
    heartbeat_every_s:
        Worker heartbeat interval (default 1s); must be comfortably
        below ``lease_timeout_s``.
    max_lease_expiries:
        Poison budget: after this many lost leases a cell is
        quarantined as ``quarantined-poison`` instead of being handed
        to yet another worker (default 3).
    speculative:
        Enable bounded speculative re-execution of stragglers: once
        nothing else is dispatchable, idle workers shadow the oldest
        in-flight cells and the first completion wins.
    gc_quarantine:
        When set, sweep the result-store (and, if checkpointing is
        configured, snapshot-store) quarantine directories after the
        build, keeping only this many newest entries; counts land in
        ``quarantine_swept`` and the summary.
    distributed:
        Path to a shared work-queue directory (a filesystem every
        participating machine can reach). The build then runs as a
        *coordinator* over that queue (see
        :mod:`repro.experiments.distqueue`): it publishes one durable
        task per unsatisfied cell, runs an embedded node agent with
        ``workers`` local workers, and supervises any peer agents
        started with ``repro node <dir>`` — fencing dead or
        partitioned nodes by epoch and re-dispatching their leases.
        With no peers the build degrades gracefully to the single-node
        shape; with an unreachable queue root it falls back to the
        ordinary in-process path. ``lease_timeout_s`` doubles as the
        node heartbeat timeout. Results flow through the shared
        ``store`` (created at the default location when None).
    """
    if not isinstance(profile, Profile):
        profile = get_profile(profile)
    if store is None and use_cache:
        store = ResultStore()
    matrix = ExperimentMatrix(profile)
    corpus = BehaviorCorpus(profile=profile)
    started = time.perf_counter()
    plan = _affinity_order(matrix.corpus_runs())
    configure_default_cache(graph_cache_bytes)

    obs_level = resolve_obs_level(obs)
    obs_path: "Path | None" = None
    run_id: "str | None" = None
    if obs_level != "off":
        if obs_dir is not None:
            obs_path = Path(obs_dir)
        elif os.environ.get(OBS_DIR_ENV):
            obs_path = Path(os.environ[OBS_DIR_ENV])
        elif store is not None:
            obs_path = store.root / "obs"
        else:
            obs_path = Path(".repro_obs")
        # Deterministic: a resumed build of the same (profile, seed)
        # shares the run id — and the trace/span ids derived below —
        # so its events extend the original trace instead of forking
        # a new one (the re-link mechanism of repro.obs.tracing).
        run_id = derive_run_id(profile.name, profile.seed)
        corpus.run_id = run_id
        corpus.obs_dir = str(obs_path)
        tel = configure(obs_level, run_id=run_id,
                        events_path=obs_path / EVENTS_FILENAME)
        tel.set_trace(TraceContext.for_build(profile.name, profile.seed))
        tel.emit("build_start", profile=profile.name, workers=workers,
                 planned=len(plan), level=obs_level, seed=profile.seed)
    tel = get_telemetry()

    def stopped() -> bool:
        return stop_requested is not None and stop_requested()

    try:
        total = len(plan)
        dist_queue = None
        if distributed is not None:
            from repro.experiments.distqueue import DistributedQueue

            dist_queue = DistributedQueue(distributed)
            try:
                dist_queue.ensure_layout()
            except OSError as exc:
                # The shared queue root is unreachable: degrade to the
                # ordinary single-node path instead of failing the
                # build over an infra fault.
                dist_queue = None
                tel.emit("distqueue", action="unreachable",
                         error=str(exc))
                if progress is not None:
                    progress(f"distributed queue {distributed} "
                             f"unreachable ({exc}); falling back to "
                             f"single-node build")
        if dist_queue is not None:
            from repro.experiments.distqueue import (
                Coordinator,
                profile_to_dict,
            )

            if store is None:
                # The queue protocol transports results through the
                # shared store; a distributed build cannot run cacheless.
                store = ResultStore()
            tel.set_node("coordinator")
            manifest = {
                "profile": profile_to_dict(profile),
                "store_root": str(Path(store.root).resolve()),
                "timeout_s": timeout_s,
                "retries": retries,
                "resume": resume,
                "health_policy": health_policy,
                "health_check_every": health_check_every,
                "checkpoint_dir": (str(Path(checkpoint_dir).resolve())
                                   if checkpoint_dir is not None
                                   else None),
                "checkpoint_every": checkpoint_every,
                "graph_cache_bytes": graph_cache_bytes,
                "use_shm": use_shm,
                "obs_level": obs_level,
                "obs_dir": (str(obs_path.resolve())
                            if obs_path is not None else None),
                "run_id": run_id,
                "trace": (tel.trace.to_dict()
                          if tel.trace is not None else None),
                "lease_timeout_s": lease_timeout_s,
                "heartbeat_every_s": heartbeat_every_s,
                "max_lease_expiries": max_lease_expiries,
                "backoff_base_s": profile.retry_backoff_s,
            }
            Coordinator(
                queue=dist_queue, plan=plan, profile=profile,
                store=store, corpus=corpus, manifest=manifest,
                node_workers=workers,
                node_lease_timeout_s=lease_timeout_s or 15.0,
                max_task_requeues=max_lease_expiries or 3,
                backoff_base_s=profile.retry_backoff_s,
                progress=progress,
                stop_requested=stop_requested).run()
        elif workers <= 1:
            done = 0
            for planned in plan:
                if stopped():
                    break
                run = _isolated_execute(planned, profile, store, timeout_s,
                                        retries, resume, health_policy,
                                        health_check_every, checkpoint_dir,
                                        checkpoint_every)
                if run.ok:
                    corpus.runs.append(run)
                else:
                    corpus.failures.append(run)
                done += 1
                event = progress_event(run, done, total)
                tel.emit("progress", **event)
                if progress is not None:
                    progress(format_progress(event))
        else:
            # Multi-worker builds run under the supervised scheduler:
            # an explicit materialize -> run -> store DAG with leased
            # tasks, heartbeat-renewed deadlines, poison-cell
            # quarantine, and a circuit breaker degrading to inline
            # execution when the worker crew is unhealthy.
            from repro.experiments.scheduler import (
                SchedulerConfig,
                Supervisor,
            )
            from repro.experiments.worksite import WorkerContext

            overrides: "dict[str, Any]" = {
                "speculative": speculative,
                "backoff_base_s": profile.retry_backoff_s,
            }
            if lease_timeout_s is not None:
                overrides["lease_timeout_s"] = lease_timeout_s
            if heartbeat_every_s is not None:
                overrides["heartbeat_every_s"] = heartbeat_every_s
            if max_lease_expiries is not None:
                overrides["max_lease_expiries"] = max_lease_expiries
            ctx = WorkerContext(
                store_root=str(store.root) if store is not None else None,
                profile=profile, timeout_s=timeout_s, retries=retries,
                resume=resume, health_policy=health_policy,
                health_check_every=health_check_every,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                graph_cache_bytes=graph_cache_bytes,
                obs_level=obs_level,
                obs_dir=str(obs_path) if obs_path is not None else None,
                run_id=run_id,
                trace=(tel.trace.to_dict()
                       if tel.trace is not None else None))
            Supervisor(plan=plan, profile=profile, store=store,
                       corpus=corpus, workers=workers, ctx=ctx,
                       config=SchedulerConfig(**overrides),
                       use_shm=use_shm, resume=resume,
                       progress=progress,
                       stop_requested=stop_requested).run()
    finally:
        corpus.interrupted = corpus.interrupted or stopped()
        corpus.build_seconds = time.perf_counter() - started
        if gc_quarantine is not None:
            swept: "dict[str, int]" = {}
            if store is not None:
                swept["results"] = store.gc_quarantine(gc_quarantine)
            if checkpoint_every is not None or checkpoint_dir is not None:
                swept["snapshots"] = SnapshotStore(
                    checkpoint_dir).gc_quarantine(gc_quarantine)
            corpus.quarantine_swept = swept
        if obs_level != "off" and obs_path is not None:
            # Fold worker sinks into the parent registry + main log,
            # then drop the exporters next to the event log — also on
            # the SIGINT/exception paths, so a partial build still
            # leaves inspectable telemetry behind.
            tel = get_telemetry()
            _, worker_snaps = merge_sinks(obs_path, tel.events)
            for snap in worker_snaps:
                tel.merge_snapshot(snap)
            tel.record_peak_rss()
            tel.emit("build_end", runs=len(corpus.runs),
                     failures=len(corpus.failures),
                     interrupted=corpus.interrupted,
                     seconds=corpus.build_seconds)
            snapshot = tel.snapshot()
            write_telemetry_json(
                obs_path, snapshot, run=run_id, level=obs_level,
                profile=profile.name, workers=workers,
                build_seconds=corpus.build_seconds,
                interrupted=corpus.interrupted)
            write_prometheus(obs_path, snapshot)
            deactivate()
    return corpus
