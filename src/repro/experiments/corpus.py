"""The behavior corpus: every run of the experiment matrix, executed,
cached, and projected into the behavior space.

Paper Section 5.2: "for eleven algorithms, we have a total of 215 runs
over 11 algorithms from across three application domains ...
Unfortunately, 5 runs of AD with largest graph size failed." The
corpus reproduces exactly that shape: 11 × 20 planned runs with AD's
largest-size runs failing on the engine memory budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro._util.errors import ResourceLimitError
from repro.behavior.metrics import BehaviorMetrics, compute_metrics
from repro.behavior.run import run_computation
from repro.behavior.space import BehaviorVector, normalize_corpus
from repro.behavior.trace import RunTrace
from repro.experiments.config import (
    ExperimentMatrix,
    GraphSpec,
    PlannedRun,
    Profile,
    get_profile,
)
from repro.experiments.results import ResultStore


@dataclass
class CorpusRun:
    """One executed (or failed) cell of the corpus."""

    algorithm: str
    spec: GraphSpec
    trace: "RunTrace | None"
    metrics: "BehaviorMetrics | None"
    failure: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.trace is not None

    @property
    def tag(self) -> tuple:
        """Run identity carried onto behavior vectors:
        ``(algorithm, nedges, alpha)``."""
        return (self.algorithm, self.spec.nedges, self.spec.alpha)


@dataclass
class BehaviorCorpus:
    """All successful runs plus the recorded failures."""

    profile: Profile
    runs: list[CorpusRun] = field(default_factory=list)
    failures: list[CorpusRun] = field(default_factory=list)
    build_seconds: float = 0.0

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def vectors(self, *, scheme: str = "max") -> list[BehaviorVector]:
        """Corpus-normalized behavior vectors, tagged with run identity."""
        metrics = [r.metrics for r in self.runs]
        tags = [r.tag for r in self.runs]
        return normalize_corpus(metrics, scheme=scheme, tags=tags)

    def by_algorithm(self, algorithm: str) -> list[CorpusRun]:
        return [r for r in self.runs if r.algorithm == algorithm]

    def by_structure(self, nedges: int, alpha: float) -> list[CorpusRun]:
        """Runs sharing one graph structure (size, α) across domains —
        the paper's single-graph ensembles pair each GA structure with
        the same-parameter clustering and CF generators."""
        return [r for r in self.runs
                if r.spec.nedges == nedges and r.spec.alpha == alpha]

    def algorithms(self) -> list[str]:
        return sorted({r.algorithm for r in self.runs})

    def structures(self) -> list[tuple]:
        """Distinct (nedges, alpha) pairs present, GA scale only."""
        return sorted({(r.spec.nedges, r.spec.alpha) for r in self.runs
                       if r.spec.domain in ("ga", "clustering")})

    def summary(self) -> str:
        lines = [
            f"Behavior corpus [{self.profile.name}]: {self.n_runs} runs, "
            f"{len(self.failures)} failed, built in {self.build_seconds:.1f}s",
        ]
        for alg in self.algorithms():
            runs = self.by_algorithm(alg)
            iters = [r.trace.n_iterations for r in runs]
            lines.append(f"  {alg:<10} {len(runs):>3} runs, "
                         f"iterations {min(iters)}..{max(iters)}")
        for fail in self.failures:
            lines.append(f"  FAILED {fail.algorithm}@{fail.spec.label}: "
                         f"{fail.failure}")
        return "\n".join(lines)


def execute_planned_run(
    planned: PlannedRun,
    profile: Profile,
    store: "ResultStore | None" = None,
) -> CorpusRun:
    """Execute one cell (or fetch it from the store), profile-configured."""
    options = {"memory_budget_bytes": profile.memory_budget_bytes}
    params: dict = {}
    if planned.algorithm == "diameter":
        params["n_hashes"] = profile.ad_n_hashes
    key = (f"{profile.name}-{planned.algorithm}-"
           f"{planned.spec.cache_key()}")

    if store is not None:
        cached = store.load(key)
        if cached is not None:
            return CorpusRun(planned.algorithm, planned.spec, cached,
                             compute_metrics(cached))
        reason = store.load_failure(key)
        if reason is not None:
            return CorpusRun(planned.algorithm, planned.spec, None, None,
                             failure=reason)

    try:
        trace = run_computation(planned.algorithm, planned.spec,
                                params=params, options=options)
    except ResourceLimitError as exc:
        reason = str(exc)
        if store is not None:
            store.save_failure(key, reason)
        return CorpusRun(planned.algorithm, planned.spec, None, None,
                         failure=reason)
    if store is not None:
        store.save(key, trace)
    return CorpusRun(planned.algorithm, planned.spec, trace,
                     compute_metrics(trace))


def _worker_execute(payload: tuple) -> "CorpusRun":
    """Module-level worker for process pools (must be picklable)."""
    planned, profile, store_root = payload
    store = ResultStore(store_root) if store_root is not None else None
    return execute_planned_run(planned, profile, store)


def build_corpus(
    profile: "Profile | str | None" = None,
    *,
    store: "ResultStore | None" = None,
    use_cache: bool = True,
    progress: "Callable[[str], None] | None" = None,
    workers: int = 1,
) -> BehaviorCorpus:
    """Execute the full behavior-corpus plan (11 algorithms × 20 graphs).

    Parameters
    ----------
    profile:
        A :class:`Profile`, profile name, or None (``$REPRO_PROFILE``).
    store:
        Result cache; defaults to the standard on-disk store when
        ``use_cache`` is true.
    progress:
        Optional callback receiving one line per completed run.
    workers:
        Number of worker processes. The 220 runs are independent, so
        they parallelize embarrassingly; each worker writes through the
        shared on-disk store (atomic per-key replaces, distinct keys).
        1 (default) runs inline.
    """
    if not isinstance(profile, Profile):
        profile = get_profile(profile)
    if store is None and use_cache:
        store = ResultStore()
    matrix = ExperimentMatrix(profile)
    corpus = BehaviorCorpus(profile=profile)
    started = time.perf_counter()
    plan = matrix.corpus_runs()

    if workers <= 1:
        results = (execute_planned_run(planned, profile, store)
                   for planned in plan)
    else:
        import concurrent.futures

        store_root = store.root if store is not None else None
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers)
        payloads = [(planned, profile, store_root) for planned in plan]
        results = executor.map(_worker_execute, payloads)

    try:
        for planned, run in zip(plan, results):
            if run.ok:
                corpus.runs.append(run)
            else:
                corpus.failures.append(run)
            if progress is not None:
                status = "ok" if run.ok else "FAILED"
                progress(f"{planned.algorithm}@{planned.spec.label}: "
                         f"{status}")
    finally:
        if workers > 1:
            executor.shutdown()
    corpus.build_seconds = time.perf_counter() - started
    return corpus
