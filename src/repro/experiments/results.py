"""On-disk result store for run traces.

Building the 215-run behavior corpus takes seconds at the smoke profile
but minutes at the paper profile; every ensemble experiment (Figs 14-23,
Table 3) consumes the same corpus. The store caches each
:class:`~repro.behavior.trace.RunTrace` as one JSON file keyed by the
run's cache key (algorithm, graph spec, seed, parameter overrides), and
also remembers *failures* (the AD runs that exceed the memory budget)
so they are not retried.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro._util.errors import ValidationError
from repro.behavior.trace import RunTrace

#: Environment variable overriding the cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"
_FAILED_MARKER = "__failed__"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ResultStore:
    """Directory-backed trace cache.

    Parameters
    ----------
    root:
        Cache directory (created on first write). Defaults to
        ``$REPRO_CACHE_DIR`` or ``./.repro_cache``.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_.=" else "_" for c in key)
        if not safe:
            raise ValidationError("empty cache key")
        return self.root / f"{safe}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> "RunTrace | None":
        """Return the cached trace, or None if absent/corrupt."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if data.get(_FAILED_MARKER):
            return None
        try:
            return RunTrace.from_dict(data)
        except (TypeError, KeyError, ValidationError):
            return None

    def save(self, key: str, trace: RunTrace) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(trace.to_json(), encoding="utf-8")
        tmp.replace(path)

    # ------------------------------------------------------------------
    def load_failure(self, key: str) -> "str | None":
        """Return the recorded failure reason for a key, if any."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if data.get(_FAILED_MARKER):
            return str(data.get("reason", "unknown failure"))
        return None

    def save_failure(self, key: str, reason: str) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({_FAILED_MARKER: True, "reason": reason}),
                       encoding="utf-8")
        tmp.replace(path)

    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
