"""On-disk result store for run traces, hardened for multi-process use.

Building the 215-run behavior corpus takes seconds at the smoke profile
but minutes at the paper profile; every ensemble experiment (Figs 14-23,
Table 3) consumes the same corpus. The store caches each
:class:`~repro.behavior.trace.RunTrace` as one JSON file keyed by the
run's cache key (algorithm, graph spec, seed, parameter overrides), and
also remembers *failures* (as structured
:class:`~repro.experiments.failures.RunFailure` records) so expected
failures are not retried.

The corpus builder runs many worker processes against one store, so the
layout is designed for concurrent writers:

- **Atomic, collision-free writes** — each writer stages into its own
  temp file (``<entry>.<pid>.<uuid>.tmp``) and publishes with
  ``os.replace``; two processes writing the same key can never tear
  each other's bytes, last-writer-wins.
- **Collision-proof filenames** — the human-readable sanitized key is
  suffixed with a short hash of the *raw* key, so distinct keys that
  sanitize identically (``a@b`` vs ``a#b``) get distinct files.
- **Quarantine, not silence** — an unreadable entry (truncated JSON, a
  schema mismatch) is moved into ``<root>/quarantine/`` and the load
  reports a miss, so the runner re-executes the cell instead of
  silently consuming a corrupt trace. Only if that move itself fails
  does the store raise :class:`~repro._util.errors.CacheCorruptError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from collections.abc import Iterator
from pathlib import Path

from repro._util.errors import CacheCorruptError, ValidationError
from repro.behavior.trace import RunTrace
from repro.experiments.failures import RunFailure, retry_transient_disk

#: Environment variable overriding the cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"
_FAILED_MARKER = "__failed__"
#: Subdirectory (under the store root) receiving corrupt entries.
QUARANTINE_DIRNAME = "quarantine"
#: Default quarantine retention: every :meth:`ResultStore.quarantine`
#: call sweeps the oldest entries beyond this bound, so resumed builds
#: cannot grow the directory without limit.
QUARANTINE_MAX_ENTRIES = 256
#: Hex digits of the raw-key hash appended to every entry filename.
_KEY_DIGEST_LEN = 10


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ResultStore:
    """Directory-backed trace cache safe for concurrent writers.

    Parameters
    ----------
    root:
        Cache directory (created on first write). Defaults to
        ``$REPRO_CACHE_DIR`` or ``./.repro_cache``.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def _path(self, key: str) -> Path:
        """Entry path: sanitized key stem + short hash of the raw key.

        The hash suffix makes distinct raw keys that sanitize to the
        same stem (``@`` and ``#`` both become ``_``) land in distinct
        files instead of silently loading each other's traces.
        """
        safe = "".join(c if c.isalnum() or c in "-_.=" else "_" for c in key)
        if not safe:
            raise ValidationError("empty cache key")
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / f"{safe}-{digest[:_KEY_DIGEST_LEN]}.json"

    def _write_atomic(self, path: Path, text: str) -> None:
        """Stage into a writer-unique temp file, publish via rename.

        The temp name embeds pid + uuid so concurrent writers of the
        same key never share a staging file (the old shared
        ``path.with_suffix(".tmp")`` let two processes tear each
        other's half-written bytes); ``os.replace`` keeps the publish
        atomic on POSIX and Windows. Transient disk faults (EIO,
        ENOSPC, ESTALE — shared-filesystem hiccups under multi-node
        builds) get bounded jittered retries before the error escapes
        to be recorded as a ``disk-io`` cell failure.
        """
        def publish() -> None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
            try:
                tmp.write_text(text, encoding="utf-8")
                os.replace(tmp, path)
            finally:
                if tmp.exists():  # publish failed; don't leave litter
                    tmp.unlink(missing_ok=True)

        retry_transient_disk(publish, key=path.name,
                             on_retry=self._count_disk_retry)

    @staticmethod
    def _count_disk_retry(exc: OSError, attempt: int,
                          delay_s: float) -> None:
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.inc("store_disk_retries_total")
            tel.emit("store", action="disk-retry", errno=exc.errno,
                     attempt=attempt, backoff_s=delay_s)

    def quarantine(self, path: Path) -> "Path | None":
        """Move a corrupt entry into the quarantine directory.

        Returns the quarantined path, or None if the entry vanished
        first (another process already quarantined or replaced it).
        Raises :class:`CacheCorruptError` if the move itself fails, so
        a permanently poisoned entry cannot cause an infinite
        load-fail-reexecute loop.
        """
        qdir = self.quarantine_dir
        dest = qdir / (f"{path.stem}.{os.getpid()}."
                       f"{uuid.uuid4().hex[:8]}{path.suffix}")
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CacheCorruptError(
                f"corrupt cache entry {path} could not be quarantined: {exc}"
            ) from exc
        # Bounded retention: quarantining is rare, so sweeping inline
        # here (one directory scan) keeps the directory capped without
        # a separate maintenance daemon.
        self.gc_quarantine(QUARANTINE_MAX_ENTRIES)
        return dest

    def gc_quarantine(self, keep: int = QUARANTINE_MAX_ENTRIES) -> int:
        """Oldest-first sweep of the quarantine directory.

        Keeps the ``keep`` newest quarantined entries (by mtime, name
        as tiebreaker) and unlinks the rest; returns how many were
        removed. Quarantined files exist for post-mortem inspection,
        not correctness — the store already treated them as misses — so
        dropping the oldest loses nothing a resumed build needs.
        """
        if keep < 0 or not self.quarantine_dir.exists():
            return 0
        entries = []
        for path in self.quarantine_dir.glob("*.json*"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except FileNotFoundError:
                continue  # another process swept it first
        entries.sort()
        removed = 0
        for _mtime, _name, path in entries[:max(0, len(entries) - keep)]:
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def load(self, key: str) -> "RunTrace | None":
        """Return the cached trace, or None if absent or failed.

        Corrupt entries are quarantined and reported as a miss so the
        caller re-executes the run.
        """
        data = self._read_entry(key)
        if data is None or data.get(_FAILED_MARKER):
            return None
        try:
            return RunTrace.from_dict(data)
        except (TypeError, KeyError, ValidationError):
            self.quarantine(self._path(key))
            return None

    def save(self, key: str, trace: RunTrace) -> None:
        self._write_atomic(self._path(key), trace.to_json())

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def load_failure(self, key: str) -> "RunFailure | None":
        """Return the recorded failure for a key, if any."""
        data = self._read_entry(key)
        if data is None or not data.get(_FAILED_MARKER):
            return None
        try:
            return RunFailure.from_dict(data)
        except (ValidationError, TypeError, ValueError):
            self.quarantine(self._path(key))
            return None

    def save_failure(self, key: str, failure: "RunFailure | str") -> None:
        if isinstance(failure, str):
            failure = RunFailure(kind="crash", message=failure)
        payload = {_FAILED_MARKER: True, **failure.to_dict()}
        self._write_atomic(self._path(key), json.dumps(payload))

    def iter_traces(self) -> "Iterator[RunTrace]":
        """Yield every readable cached trace, sorted by filename.

        Failure records are skipped. Unlike :meth:`load`, unreadable
        entries are merely skipped (not quarantined): enumeration is a
        read-only reporting path and must not mutate the store under a
        concurrently running build.
        """
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(data, dict) or data.get(_FAILED_MARKER):
                continue
            try:
                yield RunTrace.from_dict(data)
            except (TypeError, KeyError, ValidationError):
                continue

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _read_entry(self, key: str) -> "dict | None":
        """Read and parse one entry; quarantine it if unreadable."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.quarantine(path)
            return None
        if not isinstance(data, dict):
            self.quarantine(path)
            return None
        return data

    def discard(self, key: str) -> bool:
        """Remove one entry (used by ``--resume`` to force a failed
        cell to re-execute); returns True if something was removed."""
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def n_quarantined(self) -> int:
        """Number of corrupt entries sitting in quarantine."""
        if not self.quarantine_dir.exists():
            return 0
        return sum(1 for _ in self.quarantine_dir.glob("*.json*"))

    def clear(self) -> int:
        """Delete every cached entry (quarantine included); returns the
        number of live entries removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        if self.quarantine_dir.exists():
            for path in self.quarantine_dir.glob("*.json*"):
                path.unlink()
        return removed
