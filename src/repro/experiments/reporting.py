"""Plain-text reporting: the tables and series the benchmarks print.

Every benchmark regenerates its paper artifact as text — a table of
rows (Tables 1-3) or labelled series (every figure) — so the paper-vs-
measured comparison in EXPERIMENTS.md is produced by the same code the
benchmark suite runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._util.errors import ValidationError

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an ASCII table with per-column width fitting."""
    rows = [[_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a series (for active-fraction curves)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    scaled = ((arr - lo) / span * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[i] for i in scaled)


def format_series(
    label: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    spark: bool = True,
) -> str:
    """One labelled series as ``label: x=y`` pairs plus a sparkline."""
    if len(xs) != len(ys):
        raise ValidationError("xs and ys must align")
    pairs = " ".join(f"{x}={_cell(float(y))}" for x, y in zip(xs, ys))
    tail = f"  {sparkline(ys)}" if spark and ys else ""
    return f"{label:<28} {pairs}{tail}"


def format_curve_block(
    title: str,
    series: "dict[str, tuple[Sequence[object], Sequence[float]]]",
) -> str:
    """A figure-like block: a title plus one line per labelled series."""
    lines = [title]
    for label, (xs, ys) in series.items():
        lines.append("  " + format_series(label, xs, ys))
    return "\n".join(lines)


def correlation_sign(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Qualitative correlation label used in trend assertions:
    ``"+"``, ``"-"``, or ``"0"`` (|pearson r| < 0.3)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size != ys.size or xs.size < 2:
        raise ValidationError("need two aligned points for a correlation")
    if np.all(xs == xs[0]) or np.all(ys == ys[0]):
        return "0"
    r = float(np.corrcoef(xs, ys)[0, 1])
    if r > 0.3:
        return "+"
    if r < -0.3:
        return "-"
    return "0"
