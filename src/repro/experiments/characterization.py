"""Whole-corpus characterization reports.

One call summarizes everything Section 4 of the paper establishes for
a corpus: per-algorithm activity shapes, metric tables with
α/size-correlation signs, the per-dimension extremes and fold ranges
(contribution 1's "1000-fold variation"), and the run-failure ledger.
Used by the ``characterize-corpus`` CLI command and available as a
library entry point for notebooks/pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.behavior.metrics import METRIC_NAMES
from repro.behavior.shapes import ActivityShape, shape_profile
from repro.experiments.corpus import BehaviorCorpus
from repro.experiments.reporting import correlation_sign, format_table


@dataclass(frozen=True)
class AlgorithmCharacterization:
    """Per-algorithm summary over its corpus runs."""

    algorithm: str
    n_runs: int
    shape: ActivityShape
    iteration_range: tuple[int, int]
    #: Mean per-edge metric values over the algorithm's runs.
    mean_metrics: tuple[float, float, float, float]
    #: Correlation sign of each metric vs α ("+", "-", "0").
    alpha_signs: tuple[str, str, str, str]
    #: Correlation sign of each metric vs log10(size).
    size_signs: tuple[str, str, str, str]


@dataclass(frozen=True)
class CorpusCharacterization:
    """The full Section-4-style characterization of a corpus."""

    profile_name: str
    n_runs: int
    n_failures: int
    algorithms: tuple[AlgorithmCharacterization, ...]
    #: Per-metric (min, max, fold) over per-algorithm means.
    dimension_ranges: dict[str, tuple[float, float, float]]

    def report(self) -> str:
        """Render the characterization as text tables."""
        rows = []
        for a in self.algorithms:
            rows.append((
                a.algorithm, a.n_runs, a.shape.value,
                f"{a.iteration_range[0]}..{a.iteration_range[1]}",
                *(f"{v:.3g}" for v in a.mean_metrics),
                "".join(a.alpha_signs),
                "".join(a.size_signs),
            ))
        table = format_table(
            ["algorithm", "runs", "activity shape", "iters",
             *METRIC_NAMES, "corr(α)", "corr(size)"],
            rows,
            title=(f"Corpus characterization [{self.profile_name}]: "
                   f"{self.n_runs} runs, {self.n_failures} failed"),
        )
        fold_rows = [(m, lo, hi, f"{fold:.0f}x")
                     for m, (lo, hi, fold) in self.dimension_ranges.items()]
        folds = format_table(
            ["metric", "min (per-alg mean)", "max", "fold range"],
            fold_rows, title="Behavior dimension ranges (contribution 1)")
        return table + "\n\n" + folds


def characterize_corpus(corpus: BehaviorCorpus) -> CorpusCharacterization:
    """Compute the full characterization of a built corpus."""
    shapes = shape_profile([r.trace for r in corpus.runs])
    algo_rows: list[AlgorithmCharacterization] = []
    per_alg_means: dict[str, np.ndarray] = {}
    for algorithm in corpus.algorithms():
        runs = corpus.by_algorithm(algorithm)
        mat = np.vstack([r.metrics.as_array() for r in runs])
        alphas = [r.spec.alpha for r in runs]
        sizes = [np.log10(r.spec.nedges) for r in runs]
        iters = [r.trace.n_iterations for r in runs]
        alpha_signs = tuple(
            correlation_sign(alphas, mat[:, i]) for i in range(4))
        size_signs = tuple(
            correlation_sign(sizes, mat[:, i]) for i in range(4))
        means = mat.mean(axis=0)
        per_alg_means[algorithm] = means
        algo_rows.append(AlgorithmCharacterization(
            algorithm=algorithm,
            n_runs=len(runs),
            shape=shapes[algorithm],
            iteration_range=(min(iters), max(iters)),
            mean_metrics=tuple(float(v) for v in means),
            alpha_signs=alpha_signs,
            size_signs=size_signs,
        ))

    stacked = np.vstack(list(per_alg_means.values()))
    ranges = {}
    for i, metric in enumerate(METRIC_NAMES):
        lo = float(stacked[:, i].min())
        hi = float(stacked[:, i].max())
        ranges[metric] = (lo, hi, hi / max(lo, 1e-15))

    return CorpusCharacterization(
        profile_name=corpus.profile.name,
        n_runs=corpus.n_runs,
        n_failures=len(corpus.failures),
        algorithms=tuple(algo_rows),
        dimension_ranges=ranges,
    )
