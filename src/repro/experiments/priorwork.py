"""Paper Table 1: the prior comparative graph-processing studies.

The paper motivates its methodology by showing that published
comparative studies use incomparable, ad-hoc ensembles. This module
encodes Table 1 as data and — the library-level payoff — models each
study's benchmark set as an :class:`~repro.ensemble.ensemble.Ensemble`
drawn from our corpus, so the studies' exploration quality can be
*scored* with spread and coverage (the analysis the paper's Section 6
performs qualitatively).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Mapping of prior-study algorithm names onto this library's registry.
STUDY_ALGORITHM_MAP = {
    "PageRank": "pagerank",
    "SSSP": "sssp",
    "WCC": "cc",
    "K-core": "kcore",
    "BFS": "sssp",       # unweighted SSSP is BFS
    "CC": "cc",
}


@dataclass(frozen=True)
class PriorStudy:
    """One row of paper Table 1."""

    authors: str
    systems: tuple[str, ...]
    algorithms: tuple[str, ...]
    graphs: tuple[str, ...]
    conclusion: str

    def mapped_algorithms(self) -> list[str]:
        """This library's registry names for the study's algorithms
        (unmappable entries are skipped)."""
        return [STUDY_ALGORITHM_MAP[a] for a in self.algorithms
                if a in STUDY_ALGORITHM_MAP]


PRIOR_STUDIES: tuple[PriorStudy, ...] = (
    PriorStudy(
        authors="M. Han [10]",
        systems=("Giraph", "GPS", "Mizan", "GraphLab"),
        algorithms=("PageRank", "SSSP", "WCC", "DMST"),
        graphs=("soc-LiveJournal", "com-Orkut", "Arabic-2005",
                "Twitter-2010", "UK-2007-05"),
        conclusion="Giraph vs GraphLab: relative performance varies, "
                   "comparable overall",
    ),
    PriorStudy(
        authors="B. Elser [6]",
        systems=("Map-Reduce", "Stratosphere", "Hama", "Giraph", "GraphLab"),
        algorithms=("K-core",),
        graphs=("ca.AstroPh", "ca.CondMat", "Amazon0601", "web-BerkStan",
                "com.Youtube", "wiki-Talk", "com.Orkut"),
        conclusion="GraphLab outperforms Giraph on all graph datasets",
    ),
    PriorStudy(
        authors="Y. Guo [9]",
        systems=("Hadoop", "YARN", "Stratosphere", "Giraph", "GraphLab",
                 "Neo4j"),
        algorithms=("Statistic algorithm", "BFS", "CC", "CD", "GE"),
        graphs=("Amazon", "WikiTalk", "KGS", "Citation", "DotaLeague",
                "Synth", "Friendster"),
        conclusion="relative performance varies, no overall conclusion",
    ),
)


def table1_rows() -> list[tuple[str, str, str, str]]:
    """Rows matching the paper's Table 1 layout."""
    rows = []
    for s in PRIOR_STUDIES:
        rows.append((
            s.authors,
            ", ".join(s.systems),
            ", ".join(s.algorithms),
            ", ".join(s.graphs),
        ))
    return rows
