"""Experiment configuration: graph specs, size profiles, and the
Table-2 experiment matrix.

The paper's matrix (Table 2) sweeps, per domain:

- Graph Analytics (CC, TC, KC, SSSP, PR, AD): ``nedges ∈ 10^6..10^9``,
  ``α ∈ {2.0, 2.25, 2.5, 2.75, 3.0}``;
- Clustering (KM): same sweep;
- Collaborative Filtering (ALS, NMF, SGD, SVD): ``nedges ∈ 10^5..10^8``,
  same α values;
- Jacobi / LBP: ``nrows ∈ {5000, 10000, 15000, 20000}``;
- DD: MRF graphs with ``nedges ∈ {1056, 1190, 1406, 1560}``.

A :class:`Profile` scales those sizes to what a single machine can run
(size *ratios* preserved — ×10 steps across four sizes) and fixes the
engine memory budget that reproduces the paper's failed AD runs at the
largest size. See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator

from repro._util.errors import ValidationError
from repro.generators.problem import ProblemInstance

#: Power-law exponents swept by the paper (Table 2).
ALPHAS: tuple[float, ...] = (2.0, 2.25, 2.5, 2.75, 3.0)

#: Algorithms whose graph structure varies, used for the 215-run
#: behavior corpus (paper Section 5.2 excludes Jacobi, LBP, DD).
CORPUS_ALGORITHMS: tuple[str, ...] = (
    "cc", "triangle", "kcore", "sssp", "pagerank", "diameter",
    "kmeans",
    "als", "nmf", "sgd", "svd",
)

#: The remaining fixed-structure algorithms (characterized in Section 4
#: but outside the ensemble corpus).
FIXED_STRUCTURE_ALGORITHMS: tuple[str, ...] = ("jacobi", "lbp", "dd")


@dataclass(frozen=True)
class GraphSpec:
    """Declarative description of one input graph/problem.

    Use the domain constructors (:meth:`ga`, :meth:`clustering`,
    :meth:`cf`, :meth:`matrix`, :meth:`grid`, :meth:`mrf`) rather than
    the raw constructor.
    """

    domain: str
    nedges: int | None = None
    alpha: float | None = None
    nrows: int | None = None
    seed: int = 0

    # ---------------- constructors ----------------
    @classmethod
    def ga(cls, nedges: int, alpha: float, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="ga", nedges=int(nedges), alpha=float(alpha),
                   seed=seed)

    @classmethod
    def clustering(cls, nedges: int, alpha: float, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="clustering", nedges=int(nedges),
                   alpha=float(alpha), seed=seed)

    @classmethod
    def cf(cls, nedges: int, alpha: float, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="cf", nedges=int(nedges), alpha=float(alpha),
                   seed=seed)

    @classmethod
    def matrix(cls, nrows: int, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="matrix", nrows=int(nrows), seed=seed)

    @classmethod
    def grid(cls, nrows: int, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="grid", nrows=int(nrows), seed=seed)

    @classmethod
    def mrf(cls, nedges: int, *, seed: int = 0) -> "GraphSpec":
        return cls(domain="mrf", nedges=int(nedges), seed=seed)

    @classmethod
    def for_domain(cls, domain: str, *, nedges: int | None = None,
                   alpha: float | None = None, nrows: int | None = None,
                   seed: int = 0) -> "GraphSpec":
        """Generic constructor used by the experiment matrix."""
        ctor = {
            "ga": lambda: cls.ga(nedges, alpha, seed=seed),
            "clustering": lambda: cls.clustering(nedges, alpha, seed=seed),
            "cf": lambda: cls.cf(nedges, alpha, seed=seed),
            "matrix": lambda: cls.matrix(nrows, seed=seed),
            "grid": lambda: cls.grid(nrows, seed=seed),
            "mrf": lambda: cls.mrf(nedges, seed=seed),
        }
        if domain not in ctor:
            raise ValidationError(f"unknown domain {domain!r}")
        return ctor[domain]()

    # ---------------- behavior ----------------
    def generate(self) -> ProblemInstance:
        """Materialize the problem instance this spec describes."""
        # Imported here so config stays import-light for consumers that
        # only need spec identities (cache keys, labels).
        from repro.generators import (
            bipartite_rating_graph,
            grid_problem,
            matrix_problem,
            mrf_problem,
            powerlaw_graph,
        )

        if self.domain == "ga":
            return powerlaw_graph(self.nedges, self.alpha, seed=self.seed)
        if self.domain == "clustering":
            return powerlaw_graph(self.nedges, self.alpha, seed=self.seed,
                                  with_points=True)
        if self.domain == "cf":
            return bipartite_rating_graph(self.nedges, self.alpha,
                                          seed=self.seed)
        if self.domain == "matrix":
            return matrix_problem(self.nrows, seed=self.seed)
        if self.domain == "grid":
            return grid_problem(self.nrows, seed=self.seed)
        if self.domain == "mrf":
            return mrf_problem(self.nedges, seed=self.seed)
        raise ValidationError(f"unknown domain {self.domain!r}")

    @property
    def label(self) -> str:
        bits = []
        if self.nedges is not None:
            bits.append(f"nedges={self.nedges:g}")
        if self.alpha is not None:
            bits.append(f"α={self.alpha}")
        if self.nrows is not None:
            bits.append(f"nrows={self.nrows}")
        return f"{self.domain}({', '.join(bits)})"

    @property
    def structure_key(self) -> tuple:
        """Identity of the *graph structure* (size, α) ignoring domain —
        used by single-graph ensembles, which pair one structure with
        many algorithms across domains (Section 5.3)."""
        return (self.nedges, self.alpha, self.nrows)

    def cache_key(self) -> str:
        return (f"{self.domain}-ne{self.nedges}-a{self.alpha}"
                f"-nr{self.nrows}-s{self.seed}")


@dataclass(frozen=True)
class Profile:
    """A size scaling of the paper's experiment matrix."""

    name: str
    #: Four GA/Clustering sizes (paper: 10^6..10^9).
    ga_sizes: tuple[int, ...]
    #: Four CF sizes (paper: 10^5..10^8).
    cf_sizes: tuple[int, ...]
    #: Jacobi matrix rows (paper: 5000..20000).
    matrix_rows: tuple[int, ...]
    #: LBP image sides (paper "nrows": 5000..20000).
    grid_sides: tuple[int, ...]
    #: DD MRF edge counts (paper-exact).
    mrf_edges: tuple[int, ...]
    #: Power-law exponents.
    alphas: tuple[float, ...] = ALPHAS
    #: Engine memory budget; chosen so AD fails at the largest GA size
    #: (the paper's 5 failed runs) and nothing else fails.
    memory_budget_bytes: int = 4 << 30
    #: AD sketch count (sets AD's state footprint).
    ad_n_hashes: int = 64
    #: Sample points for the coverage metric (paper uses 10^6).
    coverage_samples: int = 100_000
    #: Base seed for generators.
    seed: int = 7
    #: Per-run wall-clock limit in seconds (None disables); exceeding it
    #: records a ``timeout`` failure instead of stalling the build.
    run_timeout_s: "float | None" = None
    #: Retries for transient failure kinds (timeout/crash/cache-corrupt).
    max_retries: int = 0
    #: Initial retry backoff; doubles per attempt.
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        for attr in ("ga_sizes", "cf_sizes", "matrix_rows", "grid_sides",
                     "mrf_edges"):
            if len(getattr(self, attr)) == 0:
                raise ValidationError(f"profile {self.name}: {attr} is empty")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValidationError(
                f"profile {self.name}: run_timeout_s must be positive or None")
        if self.max_retries < 0:
            raise ValidationError(
                f"profile {self.name}: max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValidationError(
                f"profile {self.name}: retry_backoff_s must be >= 0")


PROFILES: dict[str, Profile] = {
    # Seconds-scale: test suite and default benchmark runs.
    "smoke": Profile(
        name="smoke",
        ga_sizes=(300, 1_000, 3_000, 10_000),
        cf_sizes=(100, 300, 1_000, 3_000),
        matrix_rows=(50, 100, 150, 200),
        grid_sides=(12, 16, 24, 32),
        mrf_edges=(112, 220, 420, 544),
        memory_budget_bytes=3 << 20,
        ad_n_hashes=64,
        coverage_samples=20_000,
    ),
    # Minutes-scale: the EXPERIMENTS.md reference runs (paper sizes /1000).
    "paper": Profile(
        name="paper",
        ga_sizes=(1_000, 10_000, 100_000, 1_000_000),
        cf_sizes=(100, 1_000, 10_000, 100_000),
        matrix_rows=(500, 1_000, 1_500, 2_000),
        grid_sides=(24, 40, 56, 72),
        mrf_edges=(1056, 1190, 1406, 1560),
        memory_budget_bytes=160 << 20,
        ad_n_hashes=64,
        coverage_samples=1_000_000,
    ),
}


def get_profile(name: str | None = None) -> Profile:
    """Resolve a profile by name, or from ``$REPRO_PROFILE`` (default smoke)."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "smoke")
    if name not in PROFILES:
        raise ValidationError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        )
    return PROFILES[name]


@dataclass(frozen=True)
class PlannedRun:
    """One cell of the experiment matrix."""

    algorithm: str
    spec: GraphSpec


@dataclass
class ExperimentMatrix:
    """The full Table-2 matrix instantiated for a profile."""

    profile: Profile = field(default_factory=get_profile)

    def _sizes_for_domain(self, domain: str) -> tuple[int, ...]:
        return {"ga": self.profile.ga_sizes,
                "clustering": self.profile.ga_sizes,
                "cf": self.profile.cf_sizes}[domain]

    def runs_for_algorithm(self, algorithm: str) -> list[PlannedRun]:
        """All planned runs of one algorithm (20 for varied-structure
        algorithms, 4 for fixed-structure ones)."""
        from repro.algorithms.registry import info

        domain = info(algorithm).domain
        seed = self.profile.seed
        if domain in ("ga", "clustering", "cf"):
            return [
                PlannedRun(algorithm, GraphSpec.for_domain(
                    domain, nedges=size, alpha=alpha, seed=seed))
                for size in self._sizes_for_domain(domain)
                for alpha in self.profile.alphas
            ]
        if domain == "matrix":
            return [PlannedRun(algorithm, GraphSpec.matrix(r, seed=seed))
                    for r in self.profile.matrix_rows]
        if domain == "grid":
            return [PlannedRun(algorithm, GraphSpec.grid(r, seed=seed))
                    for r in self.profile.grid_sides]
        if domain == "mrf":
            return [PlannedRun(algorithm, GraphSpec.mrf(m, seed=seed))
                    for m in self.profile.mrf_edges]
        raise ValidationError(f"unknown domain {domain!r}")

    def corpus_runs(self) -> list[PlannedRun]:
        """The behavior-corpus plan: 11 varied-structure algorithms × 20
        graphs = 220 planned runs (AD's largest-size runs fail by
        design, leaving the paper's 215)."""
        plan: list[PlannedRun] = []
        for algorithm in CORPUS_ALGORITHMS:
            plan.extend(self.runs_for_algorithm(algorithm))
        return plan

    def all_runs(self) -> list[PlannedRun]:
        """Corpus plan plus the fixed-structure algorithms."""
        plan = self.corpus_runs()
        for algorithm in FIXED_STRUCTURE_ALGORITHMS:
            plan.extend(self.runs_for_algorithm(algorithm))
        return plan

    def __iter__(self) -> Iterator[PlannedRun]:
        return iter(self.all_runs())
