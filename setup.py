"""Legacy setup shim.

All project metadata lives in pyproject.toml; this file only exists so
``pip install -e .`` works on environments without the ``wheel``
package (legacy editable installs bypass PEP 660 wheel builds).
"""

from setuptools import setup

setup()
