#!/usr/bin/env python3
"""Time-bounded multi-node chaos smoke for the distributed queue.

Runs, on a single machine:

1. an inline reference build of a tiny profile (the ground truth),
2. a distributed build of the same profile — a coordinator plus two
   real ``repro node`` agent subprocesses sharing a queue directory —
   with chaos injected into both agents:

   - one agent is SIGKILLed mid-lease (``REPRO_INJECT_NODE_KILL``),
   - one agent freezes past its lease, then wakes and tries to
     publish with a fenced epoch (``REPRO_INJECT_NODE_FREEZE``),

and asserts the robustness contract end to end:

- the distributed corpus vectors are **bit-identical** to the inline
  reference (same arrays, same tags, same order),
- at least one stale-epoch store attempt was **rejected** (the woken
  zombie's publish hit its fence) and **zero** stale-epoch stores
  were accepted (no stale done markers),
- every revoked lease was re-dispatched (requeues >= 1, all cells
  resolved),
- the queue directory is swept away and no shared-memory or
  heartbeat artifacts leak,
- the full-obs event log reconstructs as **one connected trace with
  zero orphan spans** across the killed node, the fenced zombie, and
  every re-dispatch (trace + critical-path reports are written to
  ``$SMOKE_ARTIFACT_DIR`` when set, for CI artifact upload).

Exit 0 on success. The whole run is bounded by ``--timeout`` seconds
(default 300) so CI can never hang on it.
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

FREEZE_S = 6.0
LEASE_TIMEOUT_S = 2.5
HEARTBEAT_S = 0.2


def log(msg: str) -> None:
    print(f"[dist-smoke] {msg}", flush=True)


def fail(msg: str) -> "int":
    print(f"[dist-smoke] FAIL: {msg}", flush=True)
    return 1


def tiny_profile():
    from repro.experiments.config import Profile

    return Profile(
        name="dist-smoke", ga_sizes=(200, 500), cf_sizes=(200,),
        matrix_rows=(16,), grid_sides=(8,), mrf_edges=(112,),
        alphas=(2.0,), ad_n_hashes=16, coverage_samples=100, seed=3)


def vector_fingerprint(corpus):
    """Order-preserving (tag, bytes) fingerprint of every vector."""
    return [(v.tag, v.as_array().tobytes()) for v in corpus.vectors()]


def spawn_agent(queue_dir: Path, scratch: Path, name: str,
                inject: "dict[str, str]") -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_CACHE_DIR"] = str(scratch / "cache")
    env.update(inject)
    out = open(scratch / f"{name}.log", "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "node", str(queue_dir),
         "--workers", "1", "--node-id", name,
         "--manifest-wait", "60"],
        env=env, stdout=out, stderr=subprocess.STDOUT)


def run(timeout_s: float, keep: bool) -> int:
    from repro.experiments.corpus import build_corpus
    from repro.experiments.results import ResultStore

    signal.signal(signal.SIGALRM,
                  lambda *_: (_ for _ in ()).throw(
                      TimeoutError(f"smoke exceeded {timeout_s:.0f}s")))
    signal.alarm(int(timeout_s))

    scratch = Path(tempfile.mkdtemp(prefix="repro-dist-smoke-"))
    os.environ["REPRO_CACHE_DIR"] = str(scratch / "cache")
    queue_dir = scratch / "queue"
    shm_before = set(glob.glob("/dev/shm/repro-shm-*"))
    profile = tiny_profile()
    agents: "list[subprocess.Popen]" = []
    try:
        log("inline reference build ...")
        t0 = time.monotonic()
        inline = build_corpus(profile,
                              store=ResultStore(scratch / "store-inline"),
                              workers=1)
        log(f"inline: {len(inline.runs)} runs, "
            f"{len(inline.failures)} failures "
            f"({time.monotonic() - t0:.1f}s)")
        if inline.failures:
            return fail("reference build has failures")
        expected = vector_fingerprint(inline)

        log("distributed chaos build: coordinator + victim (SIGKILL "
            f"mid-lease) + sleeper (frozen {FREEZE_S:.0f}s past its "
            f"{LEASE_TIMEOUT_S}s lease) ...")
        agents = [
            spawn_agent(queue_dir, scratch, "victim",
                        {"REPRO_INJECT_NODE_KILL": "*:1"}),
            spawn_agent(queue_dir, scratch, "sleeper",
                        {"REPRO_INJECT_NODE_FREEZE": f"*:{FREEZE_S}"}),
        ]
        t0 = time.monotonic()
        obs_dir = scratch / "obs"
        dist = build_corpus(profile,
                            store=ResultStore(scratch / "store-dist"),
                            workers=1,
                            distributed=queue_dir,
                            lease_timeout_s=LEASE_TIMEOUT_S,
                            heartbeat_every_s=HEARTBEAT_S,
                            obs="full", obs_dir=obs_dir)
        log(f"distributed: {len(dist.runs)} runs, "
            f"{len(dist.failures)} failures, "
            f"nodes seen {dist.nodes_seen}, lost {dist.nodes_lost}, "
            f"requeues {dist.queue_requeues}, "
            f"stale rejections {dist.stale_epoch_rejections} "
            f"({time.monotonic() - t0:.1f}s)")

        for proc in agents:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                return fail(f"agent pid {proc.pid} did not exit")
        log(f"agent exits: victim={agents[0].returncode} "
            f"sleeper={agents[1].returncode}")

        # --- the robustness contract -----------------------------------
        if dist.failures:
            return fail("distributed build has failures")
        got = vector_fingerprint(dist)
        if got != expected:
            return fail("distributed vectors are NOT bit-identical "
                        "to the inline reference")
        if dist.nodes_lost < 1:
            return fail("chaos produced no lost nodes")
        if dist.queue_requeues < 1:
            return fail("no revoked lease was re-dispatched")
        if dist.stale_epoch_rejections < 1:
            return fail("the fenced zombie's publish was never "
                        "rejected (stale_epoch_rejections == 0)")
        if dist.stale_done_markers != 0:
            return fail(f"{dist.stale_done_markers} stale-epoch stores "
                        "were accepted before fencing caught them")
        if dist.queue_leftovers != 0:
            return fail(f"{dist.queue_leftovers} queue files survived "
                        "the sweep")
        if queue_dir.exists():
            return fail("queue directory was not removed")
        shm_leaked = set(glob.glob("/dev/shm/repro-shm-*")) - shm_before
        if shm_leaked:
            return fail(f"leaked shm segments: {sorted(shm_leaked)}")
        if agents[1].returncode != 0:
            return fail("sleeper agent should recover and exit 0, "
                        f"got {agents[1].returncode}")

        # --- the causal-trace contract ----------------------------------
        from repro.obs.critpath import critical_path, render_critical_path
        from repro.obs.events import read_all_events
        from repro.obs.tracing import (build_span_tree, list_traces,
                                       render_trace)
        events = read_all_events(obs_dir)
        traces = list_traces(events)
        if len(traces) != 1:
            return fail(f"expected one trace across the killed node and "
                        f"every re-dispatch, found {traces}")
        tree = build_span_tree(events)
        if tree.orphans:
            return fail(f"{len(tree.orphans)} orphan spans — node "
                        f"events were lost: "
                        f"{[n.name or n.span_id for n in tree.orphans]}")
        if len(tree.roots) != 1:
            return fail(f"trace has {len(tree.roots)} roots, want "
                        f"exactly the build span")
        cp = critical_path(events)
        total = sum(cp["decomposition"].values())
        wall = cp["reported_wall_s"]
        if abs(total - wall) > 0.10 * wall + 0.5:
            return fail(f"critical-path decomposition ({total:.3f}s) "
                        f"strays >10% from the build wall "
                        f"({wall:.3f}s)")
        artifact_dir = os.environ.get("SMOKE_ARTIFACT_DIR")
        if artifact_dir:
            out = Path(artifact_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / "dist-trace.txt").write_text(
                render_trace(events), encoding="utf-8")
            (out / "dist-critical-path.txt").write_text(
                render_critical_path(events), encoding="utf-8")
            log(f"trace/critical-path artifacts written to {out}")
        log(f"trace {tree.trace_id} connected: {len(tree.nodes)} spans, "
            f"0 orphans; critical path {total:.3f}s vs wall {wall:.3f}s")

        log("OK: bit-identical under chaos, fencing held, no leaks")
        return 0
    except TimeoutError as exc:
        return fail(str(exc))
    finally:
        signal.alarm(0)
        for proc in agents:
            if proc.poll() is None:
                proc.kill()
        if keep:
            log(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="overall wall-clock bound in seconds")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for debugging")
    args = parser.parse_args()
    return run(args.timeout, args.keep)


if __name__ == "__main__":
    raise SystemExit(main())
