#!/usr/bin/env bash
# Repo health check: lint (when ruff is available) + tier-1 tests.
#
# Usage: scripts/check.sh [extra pytest args...]
#
# The lint step is skipped with a notice when ruff is not installed —
# the execution environment is offline and the test toolchain does not
# bundle it. Install with `pip install ruff` where the network allows.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint (pip install ruff) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"
