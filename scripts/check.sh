#!/usr/bin/env bash
# Repo health check: lint (when ruff is available) + tier-1 tests.
#
# Usage: scripts/check.sh [extra pytest args...]
#
# The lint step is skipped with a notice when ruff is not installed —
# the execution environment is offline and the test toolchain does not
# bundle it. Install with `pip install ruff` where the network allows.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint (pip install ruff) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"

# Chaos smoke: one supervised corpus build under random worker SIGKILL
# + an injected stall must converge to bit-identical vectors with no
# leaked shm segments or heartbeat files (DESIGN.md §14). Time-bounded
# so a scheduler hang fails the gate instead of wedging it.
if [ "${REPRO_SKIP_CHAOS:-0}" != "1" ]; then
    echo "== chaos smoke (supervised scheduler) =="
    PYTHONPATH=src timeout 300 python scripts/chaos_smoke.py

    # Distributed chaos smoke: coordinator + two real node agents on
    # one shared queue, one SIGKILLed mid-lease, one frozen past its
    # lease and woken as a fenced zombie. Must converge bit-identical
    # to an inline build, reject every stale-epoch store, and sweep
    # away all queue/heartbeat/shm artifacts (docs/scheduling.md).
    echo "== distributed chaos smoke (multi-node queue) =="
    PYTHONPATH=src timeout 300 python scripts/distributed_smoke.py
fi

# Telemetry-overhead smoke: a full-observability corpus build must
# stay within 15% of a dark build (DESIGN.md §12). Skip with
# REPRO_SKIP_BENCH=1 when iterating on unrelated code.
if [ "${REPRO_SKIP_BENCH:-0}" != "1" ]; then
    echo "== telemetry overhead smoke =="
    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py -x -q

    # Engine perf smoke: fused kernels keep their ≥3× dense-frontier
    # win and stay bit-identical across direction modes (DESIGN.md §13).
    echo "== engine kernel perf smoke =="
    PYTHONPATH=src python -m pytest \
        benchmarks/test_engine_throughput.py::test_bench_engine_kernels \
        -x -q

    # Ensemble search perf smoke: the blocked fast engine keeps its
    # ≥5× win over the legacy evaluator on the n=2000 spread curve
    # with scores equal to 1e-9 and identical index tuples
    # (DESIGN.md §15). Set REPRO_BENCH_LARGE=1 for the n=10k arm.
    echo "== ensemble search perf smoke =="
    PYTHONPATH=src python -m pytest benchmarks/test_bench_ensemble.py \
        -x -q
fi
