#!/usr/bin/env python
"""Chaos smoke gate: one supervised corpus build under random worker
SIGKILLs plus an injected worker stall must converge — in a single
pass — to vectors exactly matching an undisturbed build, with zero
unexpected failures, no leaked shared-memory segments, and no leaked
worksite/heartbeat files.

Run from the repo root (CI wraps it in a wall-clock timeout)::

    PYTHONPATH=src python scripts/chaos_smoke.py

Exit codes: 0 pass, 1 assertion failed.
"""

from __future__ import annotations

import glob
import os
import sys
import tempfile
from pathlib import Path

from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import build_corpus, run_cache_key
from repro.experiments.results import ResultStore

#: Small enough to finish in well under a minute, large enough to span
#: every generator family and exercise the shared-memory graph plane.
PROFILE = Profile(
    name="chaossmoke",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

#: Cell whose worker is stalled (heartbeats suspended) once: drives the
#: lease-expiry -> revoke -> re-dispatch path. SIGKILLs drive the
#: dead-worker path. Both must be absorbed within the one build.
STALL_TARGET = "cc-ga-ne200-a2.0"
N_KILL_TOKENS = 2


def fail(message: str) -> None:
    print(f"CHAOS-SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-smoke-"))
    pre_segments = set(glob.glob("/dev/shm/repro-shm-*"))
    pre_worksites = set(glob.glob(
        os.path.join(tempfile.gettempdir(), "repro-worksite-*")))

    print("== clean reference build (inline) ==")
    clean = build_corpus(PROFILE, store=ResultStore(workdir / "clean"),
                         workers=1)
    if clean.unexpected_failures:
        fail(f"clean build had unexpected failures: "
             f"{[str(f.failure) for f in clean.unexpected_failures]}")
    expected = [(v.tag, v.as_array().tolist()) for v in clean.vectors()]

    # Finite fault budgets so the build provably converges: each
    # SIGKILL and the stall consume one token.
    kill_tokens = workdir / "kill-tokens"
    kill_tokens.mkdir()
    for i in range(N_KILL_TOKENS):
        (kill_tokens / f"token-{i}").touch()
    stall_tokens = workdir / "stall-tokens"
    stall_tokens.mkdir()
    (stall_tokens / "token-0").touch()
    os.environ["REPRO_CHAOS_KILL"] = f"{kill_tokens}:1.0"
    os.environ["REPRO_INJECT_STALL"] = f"{STALL_TARGET}:30"
    os.environ["REPRO_INJECT_STALL_TOKENS"] = str(stall_tokens)

    print("== supervised build under SIGKILL + stall injection ==")
    corpus = build_corpus(
        PROFILE, store=ResultStore(workdir / "chaos"), workers=2,
        retries=0, checkpoint_dir=workdir / "snaps", checkpoint_every="1",
        lease_timeout_s=2.0, heartbeat_every_s=0.25,
        max_lease_expiries=N_KILL_TOKENS + 3)
    for env in ("REPRO_CHAOS_KILL", "REPRO_INJECT_STALL",
                "REPRO_INJECT_STALL_TOKENS"):
        os.environ.pop(env, None)
    print(corpus.summary())

    if list(kill_tokens.iterdir()) or list(stall_tokens.iterdir()):
        fail("fault injection never fired — the gate tested nothing")
    if corpus.unexpected_failures:
        fail(f"chaos build had unexpected failures: "
             f"{[str(f.failure) for f in corpus.unexpected_failures]}")
    if corpus.interrupted:
        fail("chaos build reported interrupted")
    if corpus.lease_expiries + corpus.workers_replaced < 1:
        fail("no lease expiry or worker replacement recorded — the "
             "scheduler absorbed nothing")
    actual = [(v.tag, v.as_array().tolist()) for v in corpus.vectors()]
    if actual != expected:
        fail("chaos build vectors differ from the clean build")

    leaked_shm = set(glob.glob("/dev/shm/repro-shm-*")) - pre_segments
    if leaked_shm:
        fail(f"leaked shared-memory segments: {sorted(leaked_shm)}")
    leaked_sites = set(glob.glob(os.path.join(
        tempfile.gettempdir(), "repro-worksite-*"))) - pre_worksites
    if leaked_sites:
        fail(f"leaked worksite/heartbeat files: {sorted(leaked_sites)}")

    print(f"CHAOS-SMOKE PASS: {corpus.n_runs} runs bit-identical under "
          f"{corpus.workers_replaced} worker replacements and "
          f"{corpus.lease_expiries} lease expiries")


if __name__ == "__main__":
    main()
