#!/usr/bin/env python
"""Chaos smoke gate: one supervised corpus build under random worker
SIGKILLs plus an injected worker stall must converge — in a single
pass — to vectors exactly matching an undisturbed build, with zero
unexpected failures, no leaked shared-memory segments, and no leaked
worksite/heartbeat files.

The chaos build runs with full observability and must additionally
reconstruct as **one connected trace with zero orphan spans** (every
retried/re-dispatched attempt re-derives its cell span), and its
critical-path decomposition must account for the build wall to within
10%.  Trace + critical-path reports are written to
``$SMOKE_ARTIFACT_DIR`` (when set) for CI artifact upload.

Run from the repo root (CI wraps it in a wall-clock timeout)::

    PYTHONPATH=src python scripts/chaos_smoke.py

Exit codes: 0 pass, 1 assertion failed.
"""

from __future__ import annotations

import glob
import os
import sys
import tempfile
from pathlib import Path

from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import build_corpus, run_cache_key
from repro.experiments.results import ResultStore
from repro.obs.critpath import critical_path, render_critical_path
from repro.obs.events import read_all_events
from repro.obs.tracing import build_span_tree, list_traces, render_trace

#: Small enough to finish in well under a minute, large enough to span
#: every generator family and exercise the shared-memory graph plane.
PROFILE = Profile(
    name="chaossmoke",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

#: Cell whose worker is stalled (heartbeats suspended) once: drives the
#: lease-expiry -> revoke -> re-dispatch path. SIGKILLs drive the
#: dead-worker path. Both must be absorbed within the one build.
STALL_TARGET = "cc-ga-ne200-a2.0"
N_KILL_TOKENS = 2


def fail(message: str) -> None:
    print(f"CHAOS-SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-smoke-"))
    pre_segments = set(glob.glob("/dev/shm/repro-shm-*"))
    pre_worksites = set(glob.glob(
        os.path.join(tempfile.gettempdir(), "repro-worksite-*")))

    print("== clean reference build (inline) ==")
    clean = build_corpus(PROFILE, store=ResultStore(workdir / "clean"),
                         workers=1)
    if clean.unexpected_failures:
        fail(f"clean build had unexpected failures: "
             f"{[str(f.failure) for f in clean.unexpected_failures]}")
    expected = [(v.tag, v.as_array().tolist()) for v in clean.vectors()]

    # Finite fault budgets so the build provably converges: each
    # SIGKILL and the stall consume one token.
    kill_tokens = workdir / "kill-tokens"
    kill_tokens.mkdir()
    for i in range(N_KILL_TOKENS):
        (kill_tokens / f"token-{i}").touch()
    stall_tokens = workdir / "stall-tokens"
    stall_tokens.mkdir()
    (stall_tokens / "token-0").touch()
    os.environ["REPRO_CHAOS_KILL"] = f"{kill_tokens}:1.0"
    os.environ["REPRO_INJECT_STALL"] = f"{STALL_TARGET}:30"
    os.environ["REPRO_INJECT_STALL_TOKENS"] = str(stall_tokens)

    print("== supervised build under SIGKILL + stall injection ==")
    obs_dir = workdir / "obs"
    corpus = build_corpus(
        PROFILE, store=ResultStore(workdir / "chaos"), workers=2,
        retries=0, checkpoint_dir=workdir / "snaps", checkpoint_every="1",
        lease_timeout_s=2.0, heartbeat_every_s=0.25,
        max_lease_expiries=N_KILL_TOKENS + 3,
        obs="full", obs_dir=obs_dir)
    for env in ("REPRO_CHAOS_KILL", "REPRO_INJECT_STALL",
                "REPRO_INJECT_STALL_TOKENS"):
        os.environ.pop(env, None)
    print(corpus.summary())

    if list(kill_tokens.iterdir()) or list(stall_tokens.iterdir()):
        fail("fault injection never fired — the gate tested nothing")
    if corpus.unexpected_failures:
        fail(f"chaos build had unexpected failures: "
             f"{[str(f.failure) for f in corpus.unexpected_failures]}")
    if corpus.interrupted:
        fail("chaos build reported interrupted")
    if corpus.lease_expiries + corpus.workers_replaced < 1:
        fail("no lease expiry or worker replacement recorded — the "
             "scheduler absorbed nothing")
    actual = [(v.tag, v.as_array().tolist()) for v in corpus.vectors()]
    if actual != expected:
        fail("chaos build vectors differ from the clean build")

    # -- causal-trace contract: one connected tree, zero orphans, and
    # a critical path that accounts for the wall despite the chaos.
    events = read_all_events(obs_dir)
    traces = list_traces(events)
    if len(traces) != 1:
        fail(f"expected one trace, found {traces}")
    tree = build_span_tree(events)
    if tree.orphans:
        fail(f"{len(tree.orphans)} orphan spans — events were lost: "
             f"{[n.name or n.span_id for n in tree.orphans]}")
    if len(tree.roots) != 1:
        fail(f"trace has {len(tree.roots)} roots, want exactly the "
             f"build span")
    cp = critical_path(events)
    total = sum(cp["decomposition"].values())
    wall = cp["reported_wall_s"]
    if abs(total - wall) > 0.10 * wall + 0.5:
        fail(f"critical-path decomposition ({total:.3f}s) strays >10% "
             f"from the build wall ({wall:.3f}s)")
    artifact_dir = os.environ.get("SMOKE_ARTIFACT_DIR")
    if artifact_dir:
        out = Path(artifact_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "chaos-trace.txt").write_text(
            render_trace(events), encoding="utf-8")
        (out / "chaos-critical-path.txt").write_text(
            render_critical_path(events), encoding="utf-8")
        print(f"trace/critical-path artifacts written to {out}")

    leaked_shm = set(glob.glob("/dev/shm/repro-shm-*")) - pre_segments
    if leaked_shm:
        fail(f"leaked shared-memory segments: {sorted(leaked_shm)}")
    leaked_sites = set(glob.glob(os.path.join(
        tempfile.gettempdir(), "repro-worksite-*"))) - pre_worksites
    if leaked_sites:
        fail(f"leaked worksite/heartbeat files: {sorted(leaked_sites)}")

    print(f"CHAOS-SMOKE PASS: {corpus.n_runs} runs bit-identical under "
          f"{corpus.workers_replaced} worker replacements and "
          f"{corpus.lease_expiries} lease expiries; trace "
          f"{tree.trace_id} connected ({len(tree.nodes)} spans, "
          f"0 orphans), critical path {total:.3f}s vs wall {wall:.3f}s")


if __name__ == "__main__":
    main()
