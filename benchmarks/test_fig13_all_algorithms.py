"""Figure 13 — metric values for all algorithms.

Paper: "different algorithms exhibit quite different shapes of 4
performance metrics. The values of all 4 metrics are much smaller in
ALS, SSSP, KC, PR and LBP than in other algorithms. AD requires the
most work for updating vertices, KM requires the most data
transferring, and SGD requires the most message transferring." Plus
contribution (1): "1000-fold variation across five dimensions of graph
computation behavior."
"""

import numpy as np

from repro.behavior.metrics import METRIC_NAMES
from repro.experiments.reporting import format_table


def mean_metrics(corpus, solver_runs):
    rows = {}
    for alg in corpus.algorithms():
        arr = np.vstack([r.metrics.as_array()
                         for r in corpus.by_algorithm(alg)]).mean(axis=0)
        rows[alg] = arr
    for alg, runs in solver_runs.items():
        rows[alg] = np.vstack([r.metrics.as_array()
                               for r in runs]).mean(axis=0)
    return rows


def test_fig13_all_algorithms(corpus, solver_runs, artifact, benchmark):
    rows = benchmark(lambda: mean_metrics(corpus, solver_runs))
    table = format_table(
        ["algorithm", *METRIC_NAMES],
        [(alg, *vals.tolist()) for alg, vals in sorted(rows.items())],
        title="Figure 13: mean per-edge metric values, all 14 algorithms",
    )
    artifact("fig13_all_algorithms", table)

    mat = np.vstack(list(rows.values()))
    algs = list(rows)

    # AD requires the most work for updating vertices.
    assert algs[int(mat[:, 1].argmax())] == "diameter"
    # KM requires the most data transferring (ties with other
    # gather-everything always-active programs allowed).
    assert rows["kmeans"][2] == mat[:, 2].max()
    # SGD requires the most message transferring.
    assert rows["sgd"][3] == mat[:, 3].max()

    # ALS, SSSP, KC, PR (and LBP) sit at the low end: SSSP and KC are
    # below the all-algorithm median on every metric; the others at
    # least on compute intensity (PR's messaging sits midpack on this
    # engine — recorded in EXPERIMENTS.md).
    med = np.median(mat, axis=0)
    for alg in ("sssp", "kcore", "lbp"):
        assert np.all(rows[alg] <= med + 1e-12), alg
    # PR: low compute; ALS: low activity and communication (its k×k
    # normal-equation solves are not cheap on this engine — noted in
    # EXPERIMENTS.md).
    assert rows["pagerank"][0] <= med[0] + 1e-12
    assert rows["pagerank"][1] <= med[1] + 1e-12
    for col in (0, 2, 3):
        assert rows["als"][col] <= med[col] + 1e-12

    # Contribution (1): orders-of-magnitude variation across behavior
    # dimensions (1000-fold at cluster scale; the span grows with the
    # profile's size range — assert >= 100× on WORK, >= 10× elsewhere).
    fold = mat.max(axis=0) / np.maximum(mat.min(axis=0), 1e-15)
    assert fold[1] >= 100.0
    assert np.all(fold >= 10.0)


def test_fig13_active_fraction_dimension(corpus):
    """The fifth dimension (active fraction) also spans a wide range:
    from frontier algorithms near zero to always-active at 1.0."""
    means = {alg: np.mean([r.metrics.active_fraction_mean
                           for r in corpus.by_algorithm(alg)])
             for alg in corpus.algorithms()}
    assert max(means.values()) == 1.0
    assert min(means.values()) < 0.15
