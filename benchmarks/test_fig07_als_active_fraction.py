"""Figure 7 — ALS active fraction for all graphs.

Paper: "active fraction exhibits different trends across graph sizes
and degree distributions. ALS converges much more slowly over larger
graphs, showing a nearly 60-fold difference in the number of
iterations." (The fold difference scales with the size span; the paper
sweeps 3 decades, the library profiles fewer — the benchmark asserts
a strong monotone iteration growth, and the artifact records the fold.)
"""

import numpy as np

from conftest import active_fraction_block
from repro.experiments.reporting import correlation_sign, sparkline


def test_fig07_als_active_fraction(corpus, artifact, benchmark):
    block = benchmark(lambda: active_fraction_block(corpus, "als"))
    runs = corpus.by_algorithm("als")
    iters = {(r.spec.nedges, r.spec.alpha): r.trace.n_iterations
             for r in runs}
    fold = max(iters.values()) / min(iters.values())
    lines = [f"Figure 7: ALS active fraction (iteration fold range: "
             f"{fold:.1f}x)"]
    for key, curve in block.items():
        size, alpha = key
        lines.append(f"  nedges={size:<8g} α={alpha}: {sparkline(curve)} "
                     f"({iters[key]} iters)")
    artifact("fig07_als_active_fraction", "\n".join(lines))

    # ALS is the CF exception: its active fraction is NOT constant 1.0.
    assert any(curve.min() < 0.99 for curve in block.values())

    # Trends differ across graphs: curves are not all alike.
    curves = np.vstack(list(block.values()))
    assert curves.std(axis=0).mean() > 0.02

    # Larger graphs take more iterations to converge.
    assert correlation_sign(
        [np.log10(r.spec.nedges) for r in runs],
        [r.trace.n_iterations for r in runs]) == "+"
    assert fold > 1.5
