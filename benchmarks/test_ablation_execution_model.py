"""Ablation — computation model: all four executors.

Paper §3.3: "There are also other computation models used in current
graph-processing systems (edge-centric model and graph-centric model),
but the basic behavior of graph computation is conserved."

This ablation runs CC and SSSP under four executors — synchronous
vertex-centric, asynchronous vertex-centric, edge-centric (X-Stream
full-edge streaming), and graph-centric (Giraph++ partition-local
convergence) — and quantifies which behavior dimensions are conserved
and which belong to the execution policy:

- UPDT/MSG totals: conserved exactly between sync and edge-centric;
  async and graph-centric totals differ (policy-dependent scheduling
  and boundary-only messaging respectively);
- EREAD: the edge-centric stream pays the full arc list every
  iteration, while frontier engines' reads shrink with activity;
- supersteps: graph-centric needs the fewest barriers of all.
"""

import numpy as np

from repro.algorithms.registry import create
from repro.behavior.run import build_engine_options
from repro.engine.async_engine import AsynchronousEngine, AsyncEngineOptions
from repro.engine.edge_centric import EdgeCentricEngine
from repro.engine.engine import SynchronousEngine
from repro.engine.graph_centric import GraphCentricEngine
from repro.generators import powerlaw_graph
from repro.experiments.reporting import format_table


def totals(trace):
    return (sum(r.updates for r in trace.iterations),
            sum(r.edge_reads for r in trace.iterations),
            sum(r.messages for r in trace.iterations))


def test_ablation_execution_model(artifact, benchmark):
    problem = powerlaw_graph(10_000, 2.3, seed=61)

    def compute():
        rows = []
        conserved = {}
        for algorithm in ("cc", "sssp"):
            sync = SynchronousEngine(build_engine_options(algorithm)).run(
                create(algorithm), problem)
            edge = EdgeCentricEngine().run(create(algorithm), problem)
            asyn = AsynchronousEngine(AsyncEngineOptions()).run(
                create(algorithm), problem)
            gc = GraphCentricEngine().run(create(algorithm), problem)
            for label, trace in (("sync", sync), ("edge-centric", edge),
                                 ("async-fifo", asyn),
                                 ("graph-centric", gc)):
                u, e, m = totals(trace)
                rows.append((algorithm, label, trace.n_iterations, u, e, m))
            conserved[algorithm] = (totals(sync), totals(edge),
                                    totals(asyn), sync, edge, gc)
        return rows, conserved

    rows, conserved = benchmark.pedantic(compute, rounds=1, iterations=1)
    artifact("ablation_execution_model", format_table(
        ["algorithm", "executor", "iters", "UPDT total", "EREAD total",
         "MSG total"],
        rows, title="Ablation: execution model (paper §3.3)"))

    arcs = 2 * problem.graph.n_edges
    for algorithm, (sync_t, edge_t, asyn_t, sync, edge,
                    gc) in conserved.items():
        # Conserved between sync and edge-centric: updates and messages.
        assert sync_t[0] == edge_t[0], algorithm
        assert sync_t[2] == edge_t[2], algorithm
        # EREAD is the execution-policy dimension: the stream pays the
        # full arc list per iteration.
        assert edge_t[1] == arcs * edge.n_iterations
        assert sync_t[1] < edge_t[1]
        # Async reaches the same fixed point with its own schedule; its
        # update volume is policy-dependent but the same order.
        assert 0.1 * sync_t[0] < asyn_t[0] < 10 * sync_t[0]
        # Graph-centric: fewer barriers (supersteps) than synchronous
        # iterations, with same-order message volume (its redundant
        # inner relaxations can emit somewhat more cross signals).
        assert gc.n_iterations <= sync.n_iterations
        gc_msgs = sum(r.messages for r in gc.iterations)
        assert 0.1 * sync_t[2] < gc_msgs < 10 * sync_t[2]
