"""Figure 5 — K-Means active fraction for all graphs.

Paper: "KM activates all vertices all the time. It converges much more
slowly than GA algorithms."
"""

import numpy as np

from conftest import active_fraction_block
from repro.experiments.reporting import sparkline


def test_fig05_km_active_fraction(corpus, artifact, benchmark):
    block = benchmark(lambda: active_fraction_block(corpus, "kmeans"))
    lines = ["Figure 5: KM active fraction (iterations in parentheses)"]
    iters = {(r.spec.nedges, r.spec.alpha): r.trace.n_iterations
             for r in corpus.by_algorithm("kmeans")}
    for key, curve in block.items():
        size, alpha = key
        lines.append(f"  nedges={size:<8g} α={alpha}: {sparkline(curve)} "
                     f"({iters[key]} iters)")
    artifact("fig05_km_active_fraction", "\n".join(lines))

    # All vertices active for the whole lifecycle.
    for curve in block.values():
        np.testing.assert_allclose(curve, 1.0)

    # Slower convergence than the GA frontier algorithms on the same
    # structures (paper: >700 iterations vs tens for GA).
    km_iters = np.array(list(iters.values()), dtype=float)
    for ga in ("cc", "sssp", "triangle"):
        ga_iters = np.array([r.trace.n_iterations
                             for r in corpus.by_algorithm(ga)], dtype=float)
        assert km_iters.mean() > ga_iters.mean()
