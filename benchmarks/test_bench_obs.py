"""Telemetry overhead smoke: full observability vs obs-off wall time.

Builds the same smoke-profile corpus twice per round — once with
``obs="off"`` and once with ``obs="full"`` (every iteration timed,
span + lifecycle events, per-worker sinks, exporters) — alternating
arms so machine noise hits both equally. The acceptance bar is the
one DESIGN.md §12 commits to: full-level telemetry must cost at most
15% wall time over a dark build (plus a small absolute slack, since
one scheduler stall is a visible fraction of a ~10 s build).

The measured walls land in ``benchmarks/artifacts/BENCH_obs.json`` and
the full build's ``telemetry.json`` is copied next to it (both
uploaded by CI's obs-smoke step).
"""

import json
import shutil
import time
from pathlib import Path

from repro.experiments.config import get_profile
from repro.experiments.corpus import build_corpus
from repro.experiments.results import ResultStore

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

WORKERS = 2
REPEATS = 2
MAX_REPEATS = 4
MAX_OVERHEAD = 1.15
ABS_SLACK_S = 0.75

ARMS = ("off", "full")


def _timed_build(profile, store_root, level, obs_dir):
    store = ResultStore(store_root)
    started = time.perf_counter()
    corpus = build_corpus(profile, workers=WORKERS, store=store,
                          obs=level, obs_dir=obs_dir)
    wall = time.perf_counter() - started
    assert not corpus.unexpected_failures
    return wall, corpus


def test_bench_obs_overhead(tmp_path):
    profile = get_profile("smoke")
    walls: dict[str, list[float]] = {arm: [] for arm in ARMS}
    obs_dirs: dict[str, Path] = {}

    round_no = 0
    while round_no < REPEATS or (
            round_no < MAX_REPEATS
            and min(walls["full"])
            > min(walls["off"]) * MAX_OVERHEAD + ABS_SLACK_S):
        for arm in ARMS:
            obs_dir = tmp_path / f"obs-{arm}-{round_no}"
            wall, _corpus = _timed_build(
                profile, tmp_path / f"{arm}-{round_no}", arm, obs_dir)
            walls[arm].append(wall)
            obs_dirs[arm] = obs_dir
        round_no += 1

    best = {arm: min(times) for arm, times in walls.items()}
    overhead = best["full"] / best["off"]
    report = {
        "profile": profile.name,
        "workers": WORKERS,
        "rounds": round_no,
        "wall_s": walls,
        "best_wall_s": best,
        "overhead": overhead,
        "budget": {"relative": MAX_OVERHEAD, "absolute_s": ABS_SLACK_S},
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "BENCH_obs.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8")

    telemetry = obs_dirs["full"] / "telemetry.json"
    assert telemetry.exists()
    shutil.copy(telemetry, ARTIFACT_DIR / "telemetry.json")

    assert best["full"] <= best["off"] * MAX_OVERHEAD + ABS_SLACK_S, report
