"""Ensemble-search wall time: fast blocked engine vs legacy reference.

Times best-spread curves (sizes 4..20) over synthetic behavior pools
with both engines:

- **fast** — the blocked, batched engine (tiled distance kernels, one
  matrix op per beam level, incremental swap refinement);
- **legacy** — the original monolithic evaluator (full ``squareform``
  materialization, Python loop per beam state).

Arms alternate and the best-of-N wall per arm cancels noise. At the
paper's corpus scale (n = 215) both engines are fast; at n = 2000 the
fast engine must clear a >=5x speedup gate while returning scores
equal to the legacy engine's to 1e-9 and identical index tuples. A
coverage section validates the beam parity and showcases the
lazy-greedy selector. Results merge into
``benchmarks/artifacts/BENCH_ensemble.json`` (uploaded by CI's
perf-smoke step). The n = 10_000 arm runs only when
``REPRO_BENCH_LARGE`` is set.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.search import best_ensemble, best_ensemble_curve

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
ARTIFACT = "BENCH_ensemble.json"

SIZES = [4, 8, 12, 16, 20]
BEAM_WIDTH = 64
#: Minimum fast-vs-legacy speedup on the n=2000 spread curve.
SPEEDUP_GATE = 5.0
#: Score agreement required between the two engines.
SCORE_TOL = 1e-9


def make_pool(n: int, seed: int = 7) -> list[BehaviorVector]:
    rng = np.random.default_rng(seed)
    coords = rng.random((n, 4))
    return [BehaviorVector(*c, tag=(f"alg{i % 13}", 10 ** (i % 3), 2.0))
            for i, c in enumerate(coords)]


def _merge_report(key: str, payload: dict) -> None:
    """Read-modify-write one section of the shared artifact."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / ARTIFACT
    data = json.loads(path.read_text(encoding="utf-8")) \
        if path.exists() else {}
    data[key] = payload
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _timed_curve(pool, engine, sizes=SIZES, repeats=3, **kwargs):
    walls = []
    curve = None
    for _ in range(repeats):
        started = time.perf_counter()
        curve = best_ensemble_curve(pool, sizes, "spread",
                                    beam_width=BEAM_WIDTH,
                                    engine=engine, **kwargs)
        walls.append(time.perf_counter() - started)
    return min(walls), walls, curve


def _assert_curves_agree(fast, legacy):
    for size in fast:
        assert fast[size].indices == legacy[size].indices, size
        assert fast[size].score == pytest.approx(legacy[size].score,
                                                 abs=SCORE_TOL)


def test_bench_spread_corpus_scale():
    """n = 215: the paper's own pool size. Parity plus both walls."""
    pool = make_pool(215)
    fast_best, fast_walls, fast_curve = _timed_curve(pool, "fast")
    legacy_best, legacy_walls, legacy_curve = _timed_curve(pool, "legacy")
    _assert_curves_agree(fast_curve, legacy_curve)
    _merge_report("spread_n215", {
        "n": 215, "sizes": SIZES, "beam_width": BEAM_WIDTH,
        "fast_wall_s": fast_walls, "legacy_wall_s": legacy_walls,
        "best_wall_s": {"fast": fast_best, "legacy": legacy_best},
        "speedup": legacy_best / fast_best,
        "scores": {str(s): fast_curve[s].score for s in SIZES},
    })
    assert fast_best <= legacy_best, (fast_walls, legacy_walls)


def test_bench_spread_2k_gate():
    """n = 2000: the corpus-scale gate — fast must be >=5x faster."""
    pool = make_pool(2_000)
    fast_best, fast_walls, fast_curve = _timed_curve(pool, "fast",
                                                     repeats=3)
    legacy_best, legacy_walls, legacy_curve = _timed_curve(pool, "legacy",
                                                           repeats=1)
    _assert_curves_agree(fast_curve, legacy_curve)
    speedup = legacy_best / fast_best
    _merge_report("spread_n2000", {
        "n": 2_000, "sizes": SIZES, "beam_width": BEAM_WIDTH,
        "fast_wall_s": fast_walls, "legacy_wall_s": legacy_walls,
        "best_wall_s": {"fast": fast_best, "legacy": legacy_best},
        "speedup": speedup, "gate": SPEEDUP_GATE,
        "scores": {str(s): fast_curve[s].score for s in SIZES},
    })
    assert speedup >= SPEEDUP_GATE, (
        f"fast engine {speedup:.1f}x over legacy, gate {SPEEDUP_GATE}x")


def test_bench_coverage_validation():
    """Coverage at n = 215: beam parity and the greedy selector."""
    pool = make_pool(215)
    samples = BehaviorSpace().sample(4_000, seed=0)
    sizes = [4, 8]
    walls: dict[str, float] = {}
    curves: dict[str, dict] = {}
    for engine in ("fast", "legacy"):
        started = time.perf_counter()
        curves[engine] = best_ensemble_curve(
            pool, sizes, "coverage", samples=samples,
            beam_width=BEAM_WIDTH, engine=engine)
        walls[engine] = time.perf_counter() - started
    _assert_curves_agree(curves["fast"], curves["legacy"])

    started = time.perf_counter()
    greedy = best_ensemble(pool, 20, "coverage", samples=samples,
                           engine="fast", strategy="greedy")
    greedy_wall = time.perf_counter() - started
    _merge_report("coverage_n215", {
        "n": 215, "sizes": sizes, "n_samples": 4_000,
        "beam_wall_s": walls,
        "beam_scores": {str(s): curves["fast"][s].score for s in sizes},
        "greedy_size20": {"wall_s": greedy_wall, "score": greedy.score},
    })
    # The lazy-greedy selector is the corpus-scale coverage path; it
    # must come in well under the beam walls.
    assert greedy_wall < walls["legacy"]


@pytest.mark.skipif(not os.environ.get("REPRO_BENCH_LARGE"),
                    reason="set REPRO_BENCH_LARGE=1 for the 10k arm")
def test_bench_spread_10k_large():
    """n = 10_000, size 20 only, one repeat per arm."""
    pool = make_pool(10_000)
    fast_best, fast_walls, fast_curve = _timed_curve(
        pool, "fast", sizes=[20], repeats=1)
    legacy_best, legacy_walls, legacy_curve = _timed_curve(
        pool, "legacy", sizes=[20], repeats=1)
    _assert_curves_agree(fast_curve, legacy_curve)
    _merge_report("spread_n10000", {
        "n": 10_000, "sizes": [20], "beam_width": BEAM_WIDTH,
        "fast_wall_s": fast_walls, "legacy_wall_s": legacy_walls,
        "best_wall_s": {"fast": fast_best, "legacy": legacy_best},
        "speedup": legacy_best / fast_best,
        "scores": {"20": fast_curve[20].score},
    })
    assert fast_best <= legacy_best
