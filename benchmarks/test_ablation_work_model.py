"""Ablation — the deterministic unit WORK model vs measured wall clock.

DESIGN.md §2 substitutes a deterministic FLOP-count cost model for the
paper's measured apply time so traces are bit-reproducible. This
ablation validates the substitution: across a mixed set of runs, unit
WORK and measured WORK rank the runs the same way (strong rank
correlation), so every WORK-based trend in the figures is model-
independent.
"""

import numpy as np
from scipy.stats import spearmanr

from repro.behavior.metrics import compute_metrics
from repro.behavior.run import run_computation
from repro.experiments.config import GraphSpec

# Sizes large enough that the vectorized apply's fixed per-call
# overhead amortizes — at tiny graphs measured time is all dispatch
# overhead and correlates with nothing.
RUNS = [
    ("cc", GraphSpec.ga(nedges=60_000, alpha=2.5, seed=5)),
    ("triangle", GraphSpec.ga(nedges=60_000, alpha=2.0, seed=5)),
    ("sssp", GraphSpec.ga(nedges=60_000, alpha=2.5, seed=5)),
    ("pagerank", GraphSpec.ga(nedges=60_000, alpha=2.5, seed=5)),
    ("kcore", GraphSpec.ga(nedges=60_000, alpha=2.5, seed=5)),
    ("diameter", GraphSpec.ga(nedges=30_000, alpha=2.5, seed=5)),
    ("kmeans", GraphSpec.clustering(nedges=60_000, alpha=2.5, seed=5)),
    ("als", GraphSpec.cf(nedges=20_000, alpha=2.5, seed=5)),
    ("nmf", GraphSpec.cf(nedges=20_000, alpha=2.5, seed=5)),
    ("sgd", GraphSpec.cf(nedges=20_000, alpha=2.5, seed=5)),
    ("svd", GraphSpec.cf(nedges=20_000, alpha=2.5, seed=5)),
    ("jacobi", GraphSpec.matrix(2_000, seed=5)),
    ("lbp", GraphSpec.grid(64, seed=5)),
    ("dd", GraphSpec.mrf(1_056, seed=5)),
]


def test_ablation_unit_vs_measured_work(artifact, benchmark):
    def compute():
        unit, measured, labels = [], [], []
        for name, spec in RUNS:
            t_unit = run_computation(name, spec)
            t_meas = run_computation(name, spec,
                                     options={"work_model": "measured"})
            unit.append(compute_metrics(t_unit).work)
            measured.append(compute_metrics(t_meas).work)
            labels.append(name)
        return np.asarray(unit), np.asarray(measured), labels

    unit, measured, labels = benchmark.pedantic(compute, rounds=1,
                                                iterations=1)
    rho, _p = spearmanr(unit, measured)
    lines = [f"Ablation: unit vs measured WORK (Spearman ρ = {rho:.3f})"]
    for name, u, m in zip(labels, unit, measured):
        lines.append(f"  {name:<10} unit={u:.3g}  measured={m:.3g}")
    artifact("ablation_work_model", "\n".join(lines))

    # The two models must order the algorithms' compute intensity the
    # same way (measured time is noisy at small scale; require strong,
    # not perfect, agreement).
    assert rho > 0.7

    # And unit work must be deterministic: rerunning one case twice
    # yields identical per-iteration values.
    t1 = run_computation("pagerank", RUNS[3][1])
    t2 = run_computation("pagerank", RUNS[3][1])
    assert [r.work for r in t1.iterations] == [r.work for r in t2.iterations]
