"""Figures 22 & 23 — spread and coverage under limited ensemble complexity.

Paper Section 5.6, three constraint dimensions:

1. **three algorithms** (those contributing most to both spread and
   coverage — KM/ALS/TC in the paper's corpus, the measured top-3
   here): "the algorithm-limited suites maintain a high spread, and a
   slight advantage over single algorithms";
2. **three graphs** (the largest sizes at α = 2.0): "limiting the
   number of graphs decreases spread rapidly and produces poor
   coverage — even lower than single algorithms";
3. **limited runtime**: the repetitive algorithms (AD, KM, NMF, SGD,
   SVD) have constant behavior, so truncating their runs conserves
   their behavior vectors while slashing benchmarking cost.
"""

import numpy as np

from repro.behavior.metrics import compute_metrics
from repro.behavior.space import normalize_corpus
from repro.ensemble.constrained import (
    REPETITIVE_ALGORITHMS,
    limit_to_algorithms,
    select_algorithm_suite,
    truncate_trace,
)
from repro.ensemble.search import best_ensemble
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_series

SIZES = (3, 6, 9, 12)
TRUNCATE_AT = 5


def measured_top3(vectors, samples):
    """The three algorithms jointly contributing most to spread AND
    coverage (the paper's suite-design rule, Section 5.6)."""
    return select_algorithm_suite(vectors, 3, samples=samples[:2000])


def three_graph_pool(corpus, vectors):
    """Runs on the three largest sizes at α = 2.0 (paper's choice)."""
    ga = sorted(corpus.profile.ga_sizes)[-3:]
    cf = sorted(corpus.profile.cf_sizes)[-3:]
    allowed = set(ga) | set(cf)
    return [v for v in vectors if v.tag[2] == 2.0 and v.tag[1] in allowed]


def truncated_vectors(corpus):
    """Corpus vectors where repetitive-algorithm runs are truncated to
    TRUNCATE_AT iterations before metric computation."""
    metrics = []
    tags = []
    for run in corpus.runs:
        trace = run.trace
        if run.algorithm in REPETITIVE_ALGORITHMS:
            trace = truncate_trace(trace, TRUNCATE_AT)
        metrics.append(compute_metrics(trace))
        tags.append(run.tag)
    return normalize_corpus(metrics, scheme="max", tags=tags)


def single_algorithm_reference(vectors, size, metric, samples):
    scores = []
    for alg in CORPUS_ALGORITHMS:
        pool = [v for v in vectors if v.tag[0] == alg]
        if len(pool) >= size:
            scores.append(best_ensemble(pool, size, metric,
                                        samples=samples,
                                        beam_width=32).score)
    return scores


def _curve(pool, metric, samples):
    sizes = [s for s in SIZES if s <= len(pool)]
    return sizes, [best_ensemble(pool, s, metric, samples=samples,
                                 beam_width=32).score for s in sizes]


def _run_figure(corpus, vectors, metric, samples):
    top3 = measured_top3(vectors, samples)
    limited_alg = limit_to_algorithms(vectors, top3)
    limited_graph = three_graph_pool(corpus, vectors)
    trunc = [v for v in truncated_vectors(corpus)
             if v.tag[0] in REPETITIVE_ALGORITHMS]
    rep_full = [v for v in vectors if v.tag[0] in REPETITIVE_ALGORITHMS]
    curves = {
        f"3 algorithms {top3}": _curve(limited_alg, metric, samples),
        "3 graphs (largest, α=2.0)": _curve(limited_graph, metric, samples),
        f"runtime-limited (5 reps, ≤{TRUNCATE_AT} iters)":
            _curve(trunc, metric, samples),
        "repetitive (full runs)": _curve(rep_full, metric, samples),
        "unrestricted": _curve(vectors, metric, samples),
    }
    return top3, curves


def _render(fig, metric, curves):
    lines = [f"Figure {fig}: {metric} under limited ensemble complexity"]
    for label, (sizes, scores) in curves.items():
        lines.append("  " + format_series(label, sizes, scores))
    return "\n".join(lines)


def test_fig22_spread_limited(corpus, vectors, search_samples, artifact,
                              benchmark):
    top3, curves = benchmark.pedantic(
        lambda: _run_figure(corpus, vectors, "spread", search_samples),
        rounds=1, iterations=1)
    artifact("fig22_spread_limited", _render(22, "spread", curves))

    sizes, alg_scores = curves[f"3 algorithms {top3}"]
    _, graph_scores = curves["3 graphs (largest, α=2.0)"]
    _, unrestricted = curves["unrestricted"]
    singles = single_algorithm_reference(vectors, sizes[-1], "spread",
                                         search_samples)

    # (1) Three well-chosen algorithms keep a high spread: above every
    # single algorithm at the largest common size.
    assert alg_scores[-1] >= max(singles) - 1e-9
    # (2) Three graphs lose spread much faster than three algorithms.
    assert graph_scores[-1] < alg_scores[-1]
    # Limited pools can never beat unrestricted.
    assert alg_scores[-1] <= unrestricted[-1] + 1e-9

    # (3) Truncating repetitive runs conserves their spread.
    _, trunc_scores = curves[
        f"runtime-limited (5 reps, ≤{TRUNCATE_AT} iters)"]
    _, full_scores = curves["repetitive (full runs)"]
    for t, f in zip(trunc_scores, full_scores):
        assert t == pytest_approx(f, rel=0.25)


def test_fig23_coverage_limited(corpus, vectors, search_samples, artifact,
                                benchmark):
    top3, curves = benchmark.pedantic(
        lambda: _run_figure(corpus, vectors, "coverage", search_samples),
        rounds=1, iterations=1)
    artifact("fig23_coverage_limited", _render(23, "coverage", curves))

    sizes, alg_scores = curves[f"3 algorithms {top3}"]
    _, graph_scores = curves["3 graphs (largest, α=2.0)"]
    _, unrestricted = curves["unrestricted"]
    singles = single_algorithm_reference(vectors, sizes[-1], "coverage",
                                         search_samples)

    # Three algorithms: better than every single algorithm.
    assert alg_scores[-1] >= max(singles) - 1e-6
    # Reproduction note: the paper finds three-graph coverage *below*
    # single algorithms; on this corpus the 3-graph pool still spans 11
    # algorithms and keeps moderate coverage. The robust ordering —
    # limited pools below the unrestricted optimum — holds.
    assert graph_scores[-1] <= unrestricted[-1] + 1e-9
    assert alg_scores[-1] <= unrestricted[-1] + 1e-9

    # Truncation conserves coverage of the repetitive pool.
    _, trunc_scores = curves[
        f"runtime-limited (5 reps, ≤{TRUNCATE_AT} iters)"]
    _, full_scores = curves["repetitive (full runs)"]
    for t, f in zip(trunc_scores, full_scores):
        assert abs(t - f) < 0.1


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
