"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper
(DESIGN.md §4 maps them). The behavior corpus is built once per session
at the profile selected by ``$REPRO_PROFILE`` (default ``smoke``;
``paper`` for the scaled reference runs) and cached on disk under
``.repro_cache`` so re-runs are instant.

Each benchmark writes its regenerated artifact (the table rows / figure
series) to ``benchmarks/artifacts/<name>.txt`` — those files are the
measured side of EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.behavior.metrics import resample_series
from repro.behavior.space import BehaviorSpace
from repro.experiments.config import get_profile
from repro.experiments.corpus import BehaviorCorpus, build_corpus
from repro.experiments.results import ResultStore

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def corpus(profile) -> BehaviorCorpus:
    store = ResultStore(Path.cwd() / ".repro_cache" / f"bench-{profile.name}")
    return build_corpus(profile, store=store)


@pytest.fixture(scope="session")
def space() -> BehaviorSpace:
    return BehaviorSpace()


@pytest.fixture(scope="session")
def samples(profile, space) -> np.ndarray:
    # The search budget is capped; reporting re-scores at full budget.
    return space.sample(min(profile.coverage_samples, 200_000), seed=17)


@pytest.fixture(scope="session")
def search_samples(samples) -> np.ndarray:
    """Smaller sample set for inner-loop coverage search."""
    return samples[:4_000]


@pytest.fixture(scope="session")
def vectors(corpus):
    """Corpus behavior vectors under the paper's max normalization."""
    return corpus.vectors(scheme="max")


@pytest.fixture(scope="session")
def solver_runs(profile):
    """The fixed-structure algorithms (Jacobi, LBP, DD) across their
    size sweeps — outside the 215-run corpus but needed by Figs 11-13."""
    from repro.experiments.config import (
        FIXED_STRUCTURE_ALGORITHMS,
        ExperimentMatrix,
    )
    from repro.experiments.corpus import execute_planned_run

    store = ResultStore(Path.cwd() / ".repro_cache" / f"bench-{profile.name}")
    matrix = ExperimentMatrix(profile)
    out = {}
    for alg in FIXED_STRUCTURE_ALGORITHMS:
        out[alg] = [execute_planned_run(p, profile, store)
                    for p in matrix.runs_for_algorithm(alg)]
    return out


@pytest.fixture()
def artifact(profile):
    """Writer for the regenerated table/figure text (per profile)."""

    def write(name: str, text: str) -> str:
        target = ARTIFACT_DIR / profile.name
        target.mkdir(parents=True, exist_ok=True)
        path = target / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return text

    return write


# ----------------------------------------------------------------------
# Series builders shared by the figure benchmarks
# ----------------------------------------------------------------------

def runs_sorted(corpus, algorithm):
    runs = corpus.by_algorithm(algorithm)
    return sorted(runs, key=lambda r: (r.spec.nedges or r.spec.nrows or 0,
                                       r.spec.alpha or 0))


def metric_vs_alpha(corpus, algorithm, metric):
    """{size: (alphas, values)} for one algorithm/metric."""
    out: dict = {}
    for run in runs_sorted(corpus, algorithm):
        size = run.spec.nedges
        out.setdefault(size, ([], []))
        out[size][0].append(run.spec.alpha)
        out[size][1].append(run.metrics[metric])
    return out

def metric_vs_size(corpus, algorithm, metric):
    """{alpha: (sizes, values)} for one algorithm/metric."""
    out: dict = {}
    for run in runs_sorted(corpus, algorithm):
        alpha = run.spec.alpha
        out.setdefault(alpha, ([], []))
        out[alpha][0].append(run.spec.nedges)
        out[alpha][1].append(run.metrics[metric])
    return out


def pooled_alpha_correlation(corpus, algorithm, metric):
    """Correlation sign of metric vs α pooled over all sizes."""
    from repro.experiments.reporting import correlation_sign

    runs = corpus.by_algorithm(algorithm)
    return correlation_sign([r.spec.alpha for r in runs],
                            [r.metrics[metric] for r in runs])


def pooled_size_correlation(corpus, algorithm, metric):
    from repro.experiments.reporting import correlation_sign

    runs = corpus.by_algorithm(algorithm)
    return correlation_sign([np.log10(r.spec.nedges) for r in runs],
                            [r.metrics[metric] for r in runs])


def active_fraction_block(corpus, algorithm, n_points=24):
    """{(size, alpha): resampled active-fraction curve}."""
    return {
        (run.spec.nedges, run.spec.alpha):
            resample_series(run.trace.active_fraction(), n_points)
        for run in runs_sorted(corpus, algorithm)
    }


def figure_text(title, series_lines):
    from repro.experiments.reporting import format_curve_block

    return format_curve_block(title, series_lines)
