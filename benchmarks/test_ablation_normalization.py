"""Ablation — behavior-space normalization scheme (max vs log min-max).

The paper normalizes each metric "to make it less than 1.0"
(max-normalization). Because the raw metrics span the paper's 1000-fold
range, an alternative log min-max scaling spreads the mass of runs more
evenly. This ablation shows the paper's findings are robust to that
design choice: under *both* schemes, unrestricted ensembles beat
single-algorithm ensembles, and bounds dominate everything.
"""

from repro.ensemble.search import best_ensemble
from repro.ensemble.bounds import UpperBounds
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_table

SIZE = 8


def _evaluate(vectors, samples):
    unrestricted_spread = best_ensemble(vectors, SIZE, "spread").score
    unrestricted_cov = best_ensemble(vectors, SIZE, "coverage",
                                     samples=samples).score
    single_spread = max(
        best_ensemble([v for v in vectors if v.tag[0] == alg], SIZE,
                      "spread", beam_width=32).score
        for alg in CORPUS_ALGORITHMS
        if len([v for v in vectors if v.tag[0] == alg]) >= SIZE)
    single_cov = max(
        best_ensemble([v for v in vectors if v.tag[0] == alg], SIZE,
                      "coverage", samples=samples, beam_width=32).score
        for alg in CORPUS_ALGORITHMS
        if len([v for v in vectors if v.tag[0] == alg]) >= SIZE)
    return (unrestricted_spread, single_spread,
            unrestricted_cov, single_cov)


def test_ablation_normalization_scheme(corpus, search_samples, artifact,
                                       benchmark):
    def compute():
        out = {}
        for scheme in ("max", "log"):
            vectors = corpus.vectors(scheme=scheme)
            out[scheme] = _evaluate(vectors, search_samples)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for scheme, (us, ss, uc, sc) in results.items():
        rows.append((scheme, us, ss, us / ss, uc, sc))
    artifact("ablation_normalization", format_table(
        ["scheme", "unrestr. spread", "single-alg spread", "ratio",
         "unrestr. coverage", "single-alg coverage"],
        rows, title=f"Ablation: normalization scheme (ensemble size {SIZE})"))

    for scheme, (us, ss, uc, sc) in results.items():
        # The paper's core comparative findings hold under both schemes.
        assert us > ss, scheme
        assert uc >= sc - 1e-9, scheme
        # And stay below the empirical bounds.
        ub = UpperBounds.compute([SIZE], samples=search_samples)
        assert us <= ub.spread_bound[0] + 1e-9
        assert uc <= ub.coverage_bound[0] + 1e-9
