"""Ablation — seed robustness of the methodology's conclusions.

The corpus is built from one seed per generator. Are the paper-level
conclusions (unrestricted ≫ single-algorithm; achievable spread levels)
artifacts of that seed? This ablation rebuilds a reduced corpus under
several seeds and checks the conclusions and scores are stable.
"""

import numpy as np

from repro.behavior.metrics import compute_metrics
from repro.behavior.run import run_computation
from repro.behavior.space import normalize_corpus
from repro.ensemble.search import best_ensemble
from repro.experiments.config import GraphSpec
from repro.experiments.reporting import format_table

ALGS = ("cc", "sssp", "pagerank", "triangle", "kmeans", "als", "sgd")
SIZES = (1_000, 3_000)
ALPHAS = (2.0, 2.5, 3.0)
SEEDS = (3, 17, 99)
ENSEMBLE_SIZE = 6


def _vectors_for_seed(seed):
    from repro.algorithms.registry import info

    metrics, tags = [], []
    for alg in ALGS:
        domain = info(alg).domain
        for nedges in SIZES:
            size = nedges if domain != "cf" else nedges // 3
            for alpha in ALPHAS:
                spec = GraphSpec.for_domain(domain, nedges=size,
                                            alpha=alpha, seed=seed)
                trace = run_computation(alg, spec)
                metrics.append(compute_metrics(trace))
                tags.append((alg, size, alpha))
    return normalize_corpus(metrics, scheme="max", tags=tags)


def test_ablation_seed_robustness(artifact, benchmark):
    def compute():
        rows = []
        for seed in SEEDS:
            vectors = _vectors_for_seed(seed)
            unrestricted = best_ensemble(vectors, ENSEMBLE_SIZE,
                                         "spread").score
            singles = [
                best_ensemble([v for v in vectors if v.tag[0] == alg],
                              ENSEMBLE_SIZE, "spread",
                              beam_width=16).score
                for alg in ALGS
            ]
            rows.append((seed, unrestricted, max(singles),
                         unrestricted / max(singles)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    artifact("ablation_seed_robustness", format_table(
        ["seed", "unrestricted spread", "best single-alg", "advantage"],
        rows, title=f"Ablation: seed robustness "
                    f"(size-{ENSEMBLE_SIZE} ensembles, reduced corpus)"))

    unrestricted = np.array([r[1] for r in rows])
    advantages = np.array([r[3] for r in rows])
    # The headline conclusion holds under every seed...
    assert np.all(advantages > 1.0)
    # ...and the achievable spread level is stable (< 10% relative
    # spread across seeds).
    assert unrestricted.std() / unrestricted.mean() < 0.10
