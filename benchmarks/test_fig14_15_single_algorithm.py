"""Figures 14 & 15 — spread and coverage of single-algorithm ensembles.

Paper: "as the ensemble size increases, for all 11 algorithms, spread
decreases steadily ... restricted to a single algorithm, coverage
increases very slowly ... the spread/coverage achieved by single
algorithm ensembles falls well below our empirical upper bound."
"""

import numpy as np

from repro.ensemble.bounds import UpperBounds
from repro.ensemble.search import best_ensemble
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_series

SIZES = (2, 4, 6, 8, 10, 12, 14)


def _single_algorithm_curves(vectors, metric, samples):
    curves = {}
    for alg in CORPUS_ALGORITHMS:
        pool = [v for v in vectors if v.tag[0] == alg]
        sizes = [s for s in SIZES if s <= len(pool)]
        scores = [best_ensemble(pool, s, metric, samples=samples,
                                beam_width=32).score for s in sizes]
        curves[alg] = (sizes, scores)
    return curves


def test_fig14_spread_single_algorithm(vectors, search_samples, samples,
                                       artifact, benchmark):
    curves = benchmark.pedantic(
        lambda: _single_algorithm_curves(vectors, "spread", search_samples),
        rounds=1, iterations=1)
    bound = UpperBounds.compute(list(SIZES), samples=samples)
    lines = ["Figure 14: best spread, single-algorithm ensembles"]
    for alg, (sizes, scores) in curves.items():
        lines.append("  " + format_series(alg, sizes, scores))
    lines.append("  " + format_series("UPPER BOUND", bound.sizes,
                                      bound.spread_bound))
    artifact("fig14_spread_single_algorithm", "\n".join(lines))

    for alg, (sizes, scores) in curves.items():
        # Spread decreases steadily with ensemble size.
        assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:])), alg
        # Falls well below the upper bound (at least 25% below).
        for size, score in zip(sizes, scores):
            ub = bound.spread_bound[bound.sizes.index(size)]
            assert score < ub
        assert scores[-1] < 0.75 * bound.spread_bound[
            bound.sizes.index(sizes[-1])], alg


def test_fig15_coverage_single_algorithm(vectors, search_samples, samples,
                                         artifact, benchmark):
    curves = benchmark.pedantic(
        lambda: _single_algorithm_curves(vectors, "coverage",
                                         search_samples),
        rounds=1, iterations=1)
    bound = UpperBounds.compute(list(SIZES), samples=samples)
    lines = ["Figure 15: best coverage, single-algorithm ensembles"]
    for alg, (sizes, scores) in curves.items():
        lines.append("  " + format_series(alg, sizes, scores))
    lines.append("  " + format_series("UPPER BOUND", bound.sizes,
                                      bound.coverage_bound))
    artifact("fig15_coverage_single_algorithm", "\n".join(lines))

    for alg, (sizes, scores) in curves.items():
        # Coverage increases, but slowly: the total gain over the whole
        # curve is modest compared to the bound's.
        assert all(b >= a - 1e-6 for a, b in zip(scores, scores[1:])), alg
        for size, score in zip(sizes, scores):
            ub = bound.coverage_bound[bound.sizes.index(size)]
            assert score < ub, (alg, size)
    # Single-algorithm coverage gains flatten: mean last-step gain is
    # tiny relative to the first-step level.
    gains = [scores[-1] - scores[-2] for _s, scores in curves.values()]
    assert np.mean(gains) < 0.05
