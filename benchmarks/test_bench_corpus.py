"""Corpus-build wall time: shared-memory graph plane vs legacy.

Times two full smoke-profile corpus builds with 2 workers:

- **plane** — the default path: every distinct graph is materialized
  once, published into shared memory, and attached zero-copy by the
  workers;
- **no_plane** — the pre-plane behavior (``use_shm=False`` and a
  disabled graph cache), where every one of the ~215 cells regenerates
  its graph from the spec.

Arms alternate and each is repeated; the best-of-N wall time per arm
cancels pool-startup and scheduler noise. The measured times, the
per-cell timing decomposition, and the premat stats are written to
``benchmarks/artifacts/BENCH_corpus.json`` (uploaded by CI's perf-smoke
step).
"""

import json
import time
from pathlib import Path

from repro.experiments.config import get_profile
from repro.experiments.corpus import build_corpus
from repro.experiments.results import ResultStore

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

WORKERS = 2
REPEATS = 3
#: Extra alternating rounds allowed when the first REPEATS are too
#: noisy to show the expected ordering (the build is engine-dominated
#: at smoke scale; the materialization saving is a few hundred ms).
MAX_REPEATS = 6

ARMS = {
    "plane": dict(use_shm=True),
    "no_plane": dict(use_shm=False, graph_cache_bytes=0),
}


def _timed_build(profile, store_root, **kwargs):
    store = ResultStore(store_root)
    started = time.perf_counter()
    corpus = build_corpus(profile, workers=WORKERS, store=store, **kwargs)
    return time.perf_counter() - started, corpus


def test_bench_corpus_graph_plane(tmp_path):
    profile = get_profile("smoke")
    walls: dict[str, list[float]] = {arm: [] for arm in ARMS}
    corpora: dict[str, object] = {}

    round_no = 0
    while round_no < REPEATS or (
            round_no < MAX_REPEATS
            and min(walls["plane"]) > min(walls["no_plane"])):
        for arm, kwargs in ARMS.items():
            wall, corpus = _timed_build(
                profile, tmp_path / f"{arm}-{round_no}", **kwargs)
            walls[arm].append(wall)
            corpora[arm] = corpus
        round_no += 1

    plane = corpora["plane"]
    no_plane = corpora["no_plane"]
    assert plane.graph_plane and not no_plane.graph_plane
    assert plane.premat_graphs > 0

    plane_timing = plane.timing_decomposition()
    no_plane_timing = no_plane.timing_decomposition()
    assert plane_timing is not None and no_plane_timing is not None
    # Every executed cell resolved through the plane (or the warm
    # worker cache) instead of regenerating.
    assert plane_timing["graph_reuses"] == plane_timing["cells"]
    assert no_plane_timing["graph_reuses"] == 0
    # The plane removes nearly all per-cell materialization cost.
    assert plane_timing["materialize_s"] < no_plane_timing["materialize_s"]

    best = {arm: min(times) for arm, times in walls.items()}
    report = {
        "profile": profile.name,
        "workers": WORKERS,
        "rounds": round_no,
        "wall_s": walls,
        "best_wall_s": best,
        "speedup": best["no_plane"] / best["plane"],
        "plane": {
            "premat_graphs": plane.premat_graphs,
            "premat_seconds": plane.premat_seconds,
            "timing": plane_timing,
        },
        "no_plane": {"timing": no_plane_timing},
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / "BENCH_corpus.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert best["plane"] <= best["no_plane"], report
