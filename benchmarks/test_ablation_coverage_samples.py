"""Ablation — Monte-Carlo sample budget for the coverage metric.

The paper evaluates coverage with 10^6 uniform sample points; DESIGN.md
substitutes 10^5 by default (10^6 at the paper profile). This ablation
quantifies the substitution: the coverage estimate converges as
O(1/√n), and the budgets used differ by far less than any
inter-ensemble gap the figures rely on.
"""

import numpy as np

from repro.behavior.space import BehaviorSpace
from repro.ensemble.metrics import coverage
from repro.ensemble.search import best_ensemble
from repro.experiments.reporting import format_table

BUDGETS = (1_000, 4_000, 16_000, 64_000)


def test_ablation_coverage_sample_budget(vectors, artifact, benchmark):
    space = BehaviorSpace()
    result = best_ensemble(vectors, 8, "spread")  # any fixed ensemble

    def compute():
        rows = []
        for budget in BUDGETS:
            estimates = [
                coverage(result.ensemble,
                         samples=space.sample(budget, seed=seed))
                for seed in range(5)
            ]
            rows.append((budget, float(np.mean(estimates)),
                         float(np.std(estimates))))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    artifact("ablation_coverage_samples", format_table(
        ["samples", "coverage mean", "coverage std (5 seeds)"], rows,
        title="Ablation: coverage Monte-Carlo budget"))

    budgets = np.array([r[0] for r in rows], dtype=float)
    stds = np.array([r[2] for r in rows])
    means = np.array([r[1] for r in rows])

    # O(1/√n) convergence: quadrupling the budget roughly halves the
    # seed-to-seed standard deviation (allow slack for MC noise).
    assert stds[-1] < stds[0] / 2
    # The estimates at different budgets agree far more tightly than
    # the inter-ensemble differences the figures compare (~0.05+).
    assert means.max() - means.min() < 0.01


def test_ablation_search_beam_width(vectors, search_samples, artifact):
    """The beam-search approximation is insensitive to beam width: a
    wide beam buys < 2% extra score over a narrow one, so the figures'
    best-ensemble curves are not search artifacts."""
    rows = []
    for metric in ("spread", "coverage"):
        scores = {}
        for width in (8, 64, 256):
            scores[width] = best_ensemble(
                vectors, 8, metric, samples=search_samples,
                beam_width=width).score
        rows.append((metric, scores[8], scores[64], scores[256]))
        assert scores[256] <= scores[8] * 1.02 + 1e-9
    artifact("ablation_search_beam", format_table(
        ["metric", "beam=8", "beam=64", "beam=256"], rows,
        title="Ablation: beam width sensitivity (size-8 ensembles)"))
