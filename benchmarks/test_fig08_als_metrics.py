"""Figure 8 — ALS metric values.

Paper: "Figure 8 explains why ALS is so interesting as a benchmark. ALS
behavior strongly depends on graph size and degree distribution. We
observe high variation in the average value of all 4 metrics."
"""

import numpy as np

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_size_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig08_als_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "als", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 8 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig08_als_metrics", "\n\n".join(blocks))

    runs = corpus.by_algorithm("als")
    # High variation in all four metrics across the grid.
    for metric in METRIC_NAMES:
        vals = np.array([r.metrics[metric] for r in runs])
        assert vals.max() / max(vals.min(), 1e-12) > 2.0, metric

    # Strong size dependence (per-edge intensity falls as graphs grow).
    for metric in METRIC_NAMES:
        assert pooled_size_correlation(corpus, "als", metric) == "-", metric
