"""Figure 11 — LBP active fraction.

Paper: "LBP exhibits a sharp drop in the number of active vertices over
time. Graph size has no effect on the shape of active fraction."
"""

import numpy as np

from repro.behavior.metrics import resample_series
from repro.experiments.reporting import sparkline


def test_fig11_lbp_active_fraction(solver_runs, artifact, benchmark):
    def compute():
        return {run.spec.nrows: run.trace.active_fraction()
                for run in solver_runs["lbp"]}

    curves = benchmark(compute)
    lines = ["Figure 11: LBP active fraction (x = iteration)"]
    for side, curve in sorted(curves.items()):
        lines.append(f"  side={side:<4}: {sparkline(curve[:24])} "
                     f"iters={curve.size} final={curve[-1]:.3f}")
    artifact("fig11_lbp_active_fraction", "\n".join(lines))

    for curve in curves.values():
        # Starts fully active, drops sharply within a few iterations
        # (the paper's signature shape), and ends nearly drained.
        assert curve[0] == 1.0
        assert curve[min(8, curve.size - 1)] < 0.5
        assert curve[-1] < 0.2
    # Size-independent shape: comparing on the common iteration prefix
    # (the paper overlays sizes on one iteration axis), the curves of
    # different grid sides track each other closely.
    k = min(c.size for c in curves.values())
    mats = np.vstack([c[:k] for c in curves.values()])
    for i in range(mats.shape[0]):
        for j in range(i + 1, mats.shape[0]):
            assert np.corrcoef(mats[i], mats[j])[0, 1] > 0.7


def test_fig11_jacobi_dd_always_active(solver_runs):
    """Paper Section 4.4: 'In both Jacobi and DD, all vertices are
    active for all iterations.'"""
    for alg in ("jacobi", "dd"):
        for run in solver_runs[alg]:
            np.testing.assert_allclose(run.trace.active_fraction(), 1.0)
