"""Figure 10 — SVD metric values.

Paper: "none of SGD and SVD exhibits significant changes in behavior
across graph sizes ... compute intensity is positively correlated to α;
for SVD, MSG is also positively correlated to α. NMF exhibits similar
results to SVD."
"""

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig10_svd_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "svd", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 10 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig10_svd_metrics", "\n\n".join(blocks))

    runs = corpus.by_algorithm("svd")
    # Lanczos alternation: one side's messages per iteration, all edges
    # gathered — both pinned per edge.
    for run in runs:
        assert run.metrics["eread"] == 2.0
        assert run.metrics["msg"] == 1.0
    # Fixed restart schedule → identical iteration counts at every size.
    assert len({r.trace.n_iterations for r in runs}) == 1

    # Compute intensity rises with α.
    assert pooled_alpha_correlation(corpus, "svd", "work") == "+"
    assert pooled_alpha_correlation(corpus, "svd", "updt") == "+"


def test_fig10_nmf_similar_to_svd(corpus):
    """Paper: 'NMF exhibits similar results to SVD' — same α-direction
    of compute intensity, same structural EREAD."""
    assert pooled_alpha_correlation(corpus, "nmf", "work") == \
        pooled_alpha_correlation(corpus, "svd", "work")
    for run in corpus.by_algorithm("nmf"):
        assert run.metrics["eread"] == 2.0
        assert run.metrics["msg"] == 1.0
