"""Figure 4 — PageRank metric values.

Paper: "all metrics heavily depend on graph size and degree
distribution ... communication intensity of PR is negatively correlated
to α."

Reproduction note (EXPERIMENTS.md): the structural dependence
reproduces — every PR metric responds strongly to both size and α — but
the *sign* of the communication correlation is positive on this
engine's delta-PageRank (low-degree chains at high α stay active
longer), where the paper reports negative. The benchmark asserts the
strong dependence (the robust claim) and records the measured signs.
"""

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
    pooled_size_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig04_pr_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "pagerank", m)
                                for m in METRIC_NAMES})
    signs = {m: (pooled_alpha_correlation(corpus, "pagerank", m),
                 pooled_size_correlation(corpus, "pagerank", m))
             for m in METRIC_NAMES}
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 4 [{metric}] (x = α, one series per size) "
            f"corr(α)={signs[metric][0]} corr(size)={signs[metric][1]}",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig04_pr_metrics", "\n\n".join(blocks))

    # Strong dependence on the degree distribution: every metric
    # responds to α (direction recorded above and in EXPERIMENTS.md).
    for metric in METRIC_NAMES:
        assert signs[metric][0] != "0", f"{metric} is α-blind"
    # Per-edge intensity never *grows* with size; at large scales the
    # per-edge curves flatten (pooled correlation "0"), at small scales
    # they decline ("-").
    for metric in METRIC_NAMES:
        assert signs[metric][1] in ("-", "0"), metric
