"""Ablation — does temporal variability change benchmark design?

Paper Section 5.1 frames the behavior space as averages over iterations
and leaves the temporal dimension open ("doing so optimally is an open
research challenge; we define only one vector performance space").
This ablation extends the space with per-metric coefficients of
variation (8-D, see ``repro.behavior.temporal``) and asks: does the
4-D-optimal ensemble remain near-optimal when temporal texture counts?

Reported: the 4-D best ensemble's spread *re-scored in 8-D* vs the 8-D
optimum, and the member overlap between the two selections.
"""

import numpy as np

from repro.behavior.space import BehaviorSpace
from repro.behavior.temporal import temporal_corpus
from repro.ensemble.search import best_ensemble, best_subset
from repro.experiments.reporting import format_table

SIZE = 8


def test_ablation_temporal_dimensions(corpus, vectors, artifact, benchmark):
    def compute():
        coords8, tags8 = temporal_corpus(corpus)
        res4 = best_ensemble(vectors, SIZE, "spread")
        idx8, score8 = best_subset(coords8, SIZE, "spread")
        # Re-score the 4-D choice inside the 8-D space.
        tag_to_row = {tag: i for i, tag in enumerate(tags8)}
        rows4 = [tag_to_row[m.tag] for m in res4.ensemble]
        from repro.ensemble.metrics import spread

        score4_in8 = spread(coords8[rows4],
                            space=BehaviorSpace(dims=8))
        overlap = len(set(rows4) & set(idx8))
        return res4.score, score4_in8, score8, overlap, \
            [tags8[i] for i in idx8]

    score4, score4_in8, score8, overlap, members8 = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    artifact("ablation_temporal", format_table(
        ["quantity", "value"],
        [("best 4-D spread (4-D space)", score4),
         ("4-D choice re-scored in 8-D", score4_in8),
         ("best 8-D spread", score8),
         ("member overlap (of {})".format(SIZE), overlap),
         ("8-D members", ", ".join(str(t) for t in members8))],
        title="Ablation: temporal (8-D) behavior space"))

    # The 8-D optimum can only be at least the re-scored 4-D choice.
    assert score8 >= score4_in8 - 1e-9
    # The 4-D selection retains most of the 8-D-achievable spread:
    # mean-behavior diversity already implies temporal diversity here
    # (always-active runs have low CVs, frontier runs high ones).
    assert score4_in8 >= 0.6 * score8
