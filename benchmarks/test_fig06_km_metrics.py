"""Figure 6 — K-Means metric values.

Paper: "KM behaves differently across graph sizes and degree
distributions. All metric values are positively correlated to α, except
EREAD that is constant."
"""

import numpy as np

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig06_km_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "kmeans", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 6 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig06_km_metrics", "\n\n".join(blocks))

    # EREAD is exactly constant: every vertex gathers every edge's
    # neighbor assignment, every iteration — 2 reads per edge.
    for run in corpus.by_algorithm("kmeans"):
        assert run.metrics["eread"] == 2.0

    # Compute intensity rises with α.
    assert pooled_alpha_correlation(corpus, "kmeans", "updt") == "+"
    assert pooled_alpha_correlation(corpus, "kmeans", "work") == "+"

    # Behavior differs across structures: MSG (assignment-change
    # signaling) is structure-dependent, not constant.
    msgs = [r.metrics["msg"] for r in corpus.by_algorithm("kmeans")]
    assert np.std(msgs) / np.mean(msgs) > 0.1
