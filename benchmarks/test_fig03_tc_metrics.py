"""Figure 3 — Triangle Counting metric values.

Paper: "TC exhibits no significant variation in behavior across graph
size; it has constant EREAD for all graphs; also, there is less
computation, less updates, and less messages transferred per iteration
when degree distribution becomes more uniform."
"""

import numpy as np

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig03_tc_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "triangle", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 3 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig03_tc_metrics", "\n\n".join(blocks))

    # Constant per-edge EREAD across sizes at fixed α: the gather sweep
    # reads every edge a fixed number of times regardless of scale.
    eread = series["eread"]
    for alpha_idx in range(5):
        across_sizes = [vals[alpha_idx] for _sizes, vals in eread.values()]
        assert np.std(across_sizes) / np.mean(across_sizes) < 0.10

    # Less work and fewer messages as the distribution becomes more
    # uniform (higher α → fewer triangles).
    assert pooled_alpha_correlation(corpus, "triangle", "work") == "-"
    assert pooled_alpha_correlation(corpus, "triangle", "msg") == "-"

    # TC is a fixed 3-superstep schedule: no size sensitivity in
    # iteration counts at all.
    iters = {r.trace.n_iterations for r in corpus.by_algorithm("triangle")}
    assert iters == {3}
