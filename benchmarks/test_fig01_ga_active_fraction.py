"""Figure 1 — GA active fraction for all graphs.

Regenerates the per-iteration active-fraction curves of the six Graph
Analytics algorithms across the graph grid and asserts the paper's
shape claims: each algorithm has a characteristic curve; CC and SSSP
are topology-sensitive; KC and PR less so; AD holds 1.0 throughout.
"""

import numpy as np

from conftest import active_fraction_block
from repro.experiments.reporting import sparkline

GA = ("cc", "kcore", "triangle", "sssp", "pagerank", "diameter")


def test_fig01_ga_active_fraction(corpus, artifact, benchmark):
    blocks = benchmark(lambda: {alg: active_fraction_block(corpus, alg)
                                for alg in GA})
    lines = ["Figure 1: GA active fraction (resampled to 24 lifecycle points)"]
    for alg, block in blocks.items():
        lines.append(f"[{alg}]")
        for (size, alpha), curve in block.items():
            lines.append(f"  nedges={size:<8g} α={alpha}:  {sparkline(curve)}"
                         f"  peak={curve.max():.2f} mean={curve.mean():.2f}")
    artifact("fig01_ga_active_fraction", "\n".join(lines))

    # AD: active fraction 1.0 for the whole lifecycle.
    for curve in blocks["diameter"].values():
        np.testing.assert_allclose(curve, 1.0)

    # CC and PR start fully active and drain; SSSP starts near zero and
    # peaks later (paper Section 1).
    for alg in ("cc", "pagerank"):
        for curve in blocks[alg].values():
            assert curve[0] == 1.0
            assert curve[-1] < curve[0]
    for curve in blocks["sssp"].values():
        assert curve[0] < 0.05
        assert curve.max() > curve[0]
        assert np.argmax(curve) > 0

    # Characteristic shapes differ across algorithms: mean active
    # fraction separates the always-active AD from frontier algorithms.
    means = {alg: np.mean([c.mean() for c in blocks[alg].values()])
             for alg in GA}
    assert means["diameter"] > means["cc"] > means["sssp"]


def test_fig01_topology_sensitivity(corpus):
    """CC/SSSP curves vary more across α than KC/PR curves do at fixed
    size (paper: 'the shape of trends is classified by degree
    distribution, especially for CC and SSSP ... KC and PR are less
    sensitive to graph topology')."""

    def alpha_variability(alg):
        block = active_fraction_block(corpus, alg)
        sizes = sorted({k[0] for k in block})
        per_size = []
        for size in sizes:
            curves = np.vstack([c for (s, _a), c in block.items()
                                if s == size])
            per_size.append(curves.std(axis=0).mean())
        return float(np.mean(per_size))

    sensitive = (alpha_variability("cc") + alpha_variability("sssp")) / 2
    insensitive = (alpha_variability("pagerank")
                   + alpha_variability("diameter")) / 2
    assert sensitive > insensitive
