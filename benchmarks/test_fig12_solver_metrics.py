"""Figure 12 — metric values for Jacobi, LBP, and DD.

Paper: "the behavior of Jacobi highly depends on graph scale except
EREAD; LBP and DD are less sensitive to graph size, while WORK is the
only varied metric when graph size changes."
"""

import numpy as np

from repro.experiments.reporting import correlation_sign, format_table
from repro.behavior.metrics import METRIC_NAMES


def _rows(runs):
    rows = []
    for run in runs:
        size = run.spec.nrows or run.spec.nedges
        rows.append((size, run.metrics["updt"], run.metrics["work"],
                     run.metrics["eread"], run.metrics["msg"],
                     run.trace.n_iterations))
    return rows


def test_fig12_solver_metrics(solver_runs, artifact, benchmark):
    tables = benchmark(lambda: {alg: _rows(solver_runs[alg])
                                for alg in ("jacobi", "lbp", "dd")})
    text = []
    for alg, rows in tables.items():
        text.append(format_table(
            ["size", "updt", "work", "eread", "msg", "iters"],
            rows, title=f"Figure 12 [{alg}]"))
    artifact("fig12_solver_metrics", "\n\n".join(text))

    # Jacobi: EREAD is scale-insensitive (each matrix entry read exactly
    # once per sweep)...
    jacobi = tables["jacobi"]
    ereads = [r[3] for r in jacobi]
    assert np.allclose(ereads, ereads[0])
    # ...while compute intensity per edge shifts with matrix scale (the
    # fill pattern densifies as nrows grows).
    sizes = [r[0] for r in jacobi]
    assert correlation_sign(sizes, [r[1] for r in jacobi]) == "-"
    assert correlation_sign(sizes, [r[2] for r in jacobi]) == "-"

    # DD: structurally pinned communication, only WORK/UPDT drift.
    dd = tables["dd"]
    assert all(r[3] == 2.0 for r in dd)
    assert all(r[4] == 2.0 for r in dd)
    work_dd = [r[2] for r in dd]
    assert max(work_dd) > min(work_dd)

    # LBP: size-stable behavior — per-edge metrics vary far less across
    # sizes than Jacobi's do.
    def rel_span(rows, col):
        vals = [r[col] for r in rows]
        return (max(vals) - min(vals)) / max(max(vals), 1e-12)

    assert rel_span(tables["lbp"], 1) < 2 * rel_span(jacobi, 1) + 0.5
