"""Figure 2 — K-Core metric values.

Paper: "all metrics of KC are positively correlated to α" and "heavily
depend on graph size and degree distribution".
"""

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
    pooled_size_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig02_kc_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "kcore", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 2 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig02_kc_metrics", "\n\n".join(blocks))

    # Compute and communication intensity rise with α (paper-positive);
    # EREAD is allowed to be flat at library scale.
    assert pooled_alpha_correlation(corpus, "kcore", "updt") == "+"
    assert pooled_alpha_correlation(corpus, "kcore", "work") == "+"
    assert pooled_alpha_correlation(corpus, "kcore", "msg") == "+"
    assert pooled_alpha_correlation(corpus, "kcore", "eread") in ("+", "0")

    # Size-dependence: per-edge intensity falls as graphs grow.
    for metric in ("updt", "work", "msg"):
        assert pooled_size_correlation(corpus, "kcore", metric) == "-"
