"""Figures 20 & 21 — frequency of appearance of each algorithm in the
top-100 ensembles for spread and coverage.

Paper: "not all algorithms contribute significantly to a good spread or
coverage. For example, K-Means, Alternating Least Squares, and Triangle
Counting among our suite contribute to efficient and thorough behavior
space exploration." The regenerated figures report this corpus's
frequencies; EXPERIMENTS.md compares the identities against the paper's.
"""

from repro.ensemble.frequency import algorithm_frequencies
from repro.ensemble.search import top_k_ensembles
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_table

SIZE = 10
TOP_K = 100


def _frequency_table(vectors, metric, samples):
    top = top_k_ensembles(vectors, SIZE, metric, k=TOP_K,
                          samples=samples)
    return algorithm_frequencies(top)


def _render(report, fig, metric):
    rows = [(alg,
             f"{report.slot_share.get(alg, 0.0):.3f}",
             f"{report.presence.get(alg, 0.0):.2f}")
            for alg in CORPUS_ALGORITHMS]
    return format_table(
        ["algorithm", "slot share", "ensemble presence"],
        rows,
        title=(f"Figure {fig}: algorithm frequency in top-{TOP_K} "
               f"size-{SIZE} ensembles ({metric})"),
    )


def test_fig20_frequency_spread(vectors, search_samples, artifact,
                                benchmark):
    report = benchmark.pedantic(
        lambda: _frequency_table(vectors, "spread", search_samples),
        rounds=1, iterations=1)
    artifact("fig20_frequency_spread", _render(report, 20, "spread"))

    # Not all algorithms contribute: several of the 11 never appear,
    # and the leaders take well over a fair share of slots.
    assert len(report.slot_share) < len(CORPUS_ALGORITHMS)
    assert report.ranked()[0][1] > 2.0 / len(CORPUS_ALGORITHMS)


def test_fig21_frequency_coverage(vectors, search_samples, artifact,
                                  benchmark):
    report = benchmark.pedantic(
        lambda: _frequency_table(vectors, "coverage", search_samples),
        rounds=1, iterations=1)
    artifact("fig21_frequency_coverage", _render(report, 21, "coverage"))

    assert len(report.slot_share) <= len(CORPUS_ALGORITHMS)
    assert report.ranked()[0][1] > 2.0 / len(CORPUS_ALGORITHMS)
    # Coverage draws on a broader algorithm mix than spread does
    # (paper: the coverage-best ensembles list more distinct
    # algorithms).
    spread_report = _frequency_table(vectors, "spread", search_samples)
    assert len(report.slot_share) >= len(spread_report.slot_share)
