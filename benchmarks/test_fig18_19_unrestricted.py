"""Figures 18 & 19 — spread and coverage of unrestricted ensembles.

Paper: "allowed unrestricted choice across multiple algorithms and
graphs, it is possible to sample the space much more efficiently ...
there's a clear benefit in drawing richly from both algorithm and graph
structure diversity, with as much as a three-fold greater spread ...
[and] 30% better coverage than single algorithm ensembles."
"""

import numpy as np

from repro.ensemble.search import best_ensemble
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_series

SIZES = (2, 5, 10, 15, 20)


def best_single_algorithm_score(vectors, size, metric, samples):
    scores = []
    for alg in CORPUS_ALGORITHMS:
        pool = [v for v in vectors if v.tag[0] == alg]
        if len(pool) >= size:
            scores.append(best_ensemble(pool, size, metric, samples=samples,
                                        beam_width=32).score)
    return max(scores)


def test_fig18_spread_unrestricted(vectors, search_samples, artifact,
                                   benchmark):
    def compute():
        unrestricted = [best_ensemble(vectors, s, "spread").score
                        for s in SIZES]
        single = [best_single_algorithm_score(vectors, s, "spread",
                                              search_samples)
                  for s in SIZES]
        return unrestricted, single

    unrestricted, single = benchmark.pedantic(compute, rounds=1,
                                              iterations=1)
    lines = ["Figure 18: best spread vs ensemble size",
             "  " + format_series("unrestricted", SIZES, unrestricted),
             "  " + format_series("best single-algorithm", SIZES, single)]
    ratio = unrestricted[-1] / single[-1]
    lines.append(f"  advantage at size {SIZES[-1]}: {ratio:.2f}x")
    artifact("fig18_spread_unrestricted", "\n".join(lines))

    # Unrestricted spread starts high and declines slowly...
    assert unrestricted[0] > 1.0
    assert all(a >= b - 1e-9 for a, b in
               zip(unrestricted, unrestricted[1:]))
    # ...and dominates single-algorithm ensembles at every size, with a
    # large advantage at 20 members (paper: ~3x; assert ≥ 1.5x).
    for u, s in zip(unrestricted, single):
        assert u >= s - 1e-9
    assert ratio > 1.5


def test_fig19_coverage_unrestricted(vectors, search_samples, samples,
                                     artifact, benchmark):
    from repro.ensemble.metrics import coverage

    def compute():
        unrestricted = []
        for s in SIZES:
            res = best_ensemble(vectors, s, "coverage",
                                samples=search_samples)
            # Re-score at the full sample budget for reporting.
            unrestricted.append(coverage(res.ensemble, samples=samples))
        single = [best_single_algorithm_score(vectors, s, "coverage",
                                              search_samples)
                  for s in SIZES]
        return unrestricted, single

    unrestricted, single = benchmark.pedantic(compute, rounds=1,
                                              iterations=1)
    gain = (unrestricted[-1] - single[-1]) / single[-1]
    lines = ["Figure 19: best coverage vs ensemble size",
             "  " + format_series("unrestricted", SIZES, unrestricted),
             "  " + format_series("best single-algorithm", SIZES, single),
             f"  relative advantage at size {SIZES[-1]}: {gain * 100:.1f}%"]
    artifact("fig19_coverage_unrestricted", "\n".join(lines))

    # Coverage grows with size and dominates single-algorithm ensembles
    # from small sizes on (paper: significantly higher at as few as 5).
    assert all(b >= a - 1e-6 for a, b in
               zip(unrestricted, unrestricted[1:]))
    for u, s in zip(unrestricted[1:], single[1:]):
        assert u >= s - 1e-6
    assert unrestricted[SIZES.index(5)] > single[SIZES.index(5)]
