"""Table 3 — members of the ensembles achieving best spread and coverage.

Paper: the best ensembles are "complicated — involving large numbers of
algorithms and graphs. For example, the best five-member ensemble for
spread includes 4 algorithms and 5 different graphs. The best
five-member ensemble for coverage includes five algorithms and 4
graphs." Certain algorithms recur (ALS for spread, KM for coverage in
the paper's corpus; the regenerated table records this corpus's
recurring algorithms).
"""

from repro.ensemble.search import best_ensemble
from repro.experiments.reporting import format_table

SIZES = (5, 10, 15, 20)


def _members(vectors, metric, samples):
    rows = []
    details = {}
    for size in SIZES:
        res = best_ensemble(vectors, size, metric, samples=samples)
        tags = res.ensemble.tags()
        if size == 5:
            cell = ", ".join(f"<{t[0]}, {t[1]:g}, {t[2]}>" for t in tags)
        else:
            cell = ", ".join(t[0] for t in tags)
        rows.append((f"best {metric}", size, cell))
        details[size] = tags
    return rows, details


def test_table3_best_members(vectors, search_samples, artifact, benchmark):
    def compute():
        spread_rows, spread_tags = _members(vectors, "spread",
                                            search_samples)
        cover_rows, cover_tags = _members(vectors, "coverage",
                                          search_samples)
        return spread_rows + cover_rows, spread_tags, cover_tags

    rows, spread_tags, cover_tags = benchmark.pedantic(compute, rounds=1,
                                                       iterations=1)
    artifact("table3_best_members", format_table(
        ["Type", "Size", "Runs (algorithm[, graph size, α])"], rows,
        title="Table 3: members of best ensembles"))

    for tags_by_size in (spread_tags, cover_tags):
        five = tags_by_size[5]
        # The best five-member ensembles mix several algorithms and
        # several graph structures (paper: 4-5 of each).
        assert len({t[0] for t in five}) >= 3
        assert len({t[1:] for t in five}) >= 3
        # Larger best ensembles keep drawing from multiple algorithms.
        assert len({t[0] for t in tags_by_size[20]}) >= 4

    # Ensembles use runs of both small and large structures.
    sizes_used = {t[1] for t in spread_tags[20]}
    assert len(sizes_used) >= 2
