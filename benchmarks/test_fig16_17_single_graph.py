"""Figures 16 & 17 — spread and coverage of single-graph ensembles.

Paper: "we select fifteen graphs with varied size and α ... For each
single-graph ensemble, we consider 11 runs over 11 algorithms ...
none of the graph structures enables spread anywhere close to the upper
bound, [but] the achieved spread is significantly higher than with
single algorithms. Graph structure appears to be a more important
factor in behavior variation than algorithm ... no single graph
structure is sufficient to fully explore the behavior space."
"""

import numpy as np

from repro.ensemble.bounds import UpperBounds
from repro.ensemble.search import best_ensemble
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.reporting import format_series

SIZES = (2, 4, 6, 8, 10)


def structure_pools(corpus, vectors):
    """{(size_rank, alpha): vectors} — one pool per graph structure.

    Like the paper, structures are the non-largest sizes (so all 11
    algorithms, including AD, have a run) and the pool pairs the GA
    structure with the same-rank clustering and CF runs.
    """
    ga_sizes = sorted(corpus.profile.ga_sizes)[:3]
    cf_sizes = sorted(corpus.profile.cf_sizes)[:3]
    pools = {}
    for rank, (ga_size, cf_size) in enumerate(zip(ga_sizes, cf_sizes)):
        for alpha in corpus.profile.alphas:
            pool = [v for v in vectors
                    if v.tag[2] == alpha and v.tag[1] in (ga_size, cf_size)]
            if len(pool) >= len(CORPUS_ALGORITHMS):
                pools[(ga_size, alpha)] = pool
    return pools


def _curves(pools, metric, samples):
    curves = {}
    for key, pool in pools.items():
        sizes = [s for s in SIZES if s <= len(pool)]
        scores = [best_ensemble(pool, s, metric, samples=samples,
                                beam_width=32).score for s in sizes]
        curves[key] = (sizes, scores)
    return curves


def test_fig16_spread_single_graph(corpus, vectors, search_samples, samples,
                                   artifact, benchmark):
    pools = structure_pools(corpus, vectors)
    curves = benchmark.pedantic(
        lambda: _curves(pools, "spread", search_samples),
        rounds=1, iterations=1)
    bound = UpperBounds.compute(list(SIZES), samples=samples)
    lines = [f"Figure 16: best spread, single-graph ensembles "
             f"({len(pools)} structures)"]
    for (size, alpha), (sizes, scores) in curves.items():
        lines.append("  " + format_series(f"nedges={size:g} α={alpha}",
                                          sizes, scores))
    lines.append("  " + format_series("UPPER BOUND", bound.sizes,
                                      bound.spread_bound))
    artifact("fig16_spread_single_graph", "\n".join(lines))

    # Not anywhere close to the bound, but higher than single-algorithm
    # ensembles at matched size (paper's central comparison).
    single_alg_best = max(
        best_ensemble([v for v in vectors if v.tag[0] == alg], 6, "spread",
                      samples=search_samples, beam_width=32).score
        for alg in CORPUS_ALGORITHMS
        if len([v for v in vectors if v.tag[0] == alg]) >= 6)
    graph_scores_at_6 = [scores[sizes.index(6)]
                         for sizes, scores in curves.values() if 6 in sizes]
    assert np.median(graph_scores_at_6) > single_alg_best
    for (key, (sizes, scores)) in curves.items():
        for size, score in zip(sizes, scores):
            assert score < bound.spread_bound[bound.sizes.index(size)]


def test_fig17_coverage_single_graph(corpus, vectors, search_samples,
                                     samples, artifact, benchmark):
    pools = structure_pools(corpus, vectors)
    curves = benchmark.pedantic(
        lambda: _curves(pools, "coverage", search_samples),
        rounds=1, iterations=1)
    bound = UpperBounds.compute(list(SIZES), samples=samples)
    lines = [f"Figure 17: best coverage, single-graph ensembles "
             f"({len(pools)} structures)"]
    for (size, alpha), (sizes, scores) in curves.items():
        lines.append("  " + format_series(f"nedges={size:g} α={alpha}",
                                          sizes, scores))
    lines.append("  " + format_series("UPPER BOUND", bound.sizes,
                                      bound.coverage_bound))
    artifact("fig17_coverage_single_graph", "\n".join(lines))

    # Flattening trend, below the bound everywhere.
    for (key, (sizes, scores)) in curves.items():
        assert all(b >= a - 1e-6 for a, b in zip(scores, scores[1:])), key
        for size, score in zip(sizes, scores):
            assert score < bound.coverage_bound[bound.sizes.index(size)]
        # No single structure explores fully: final gap to bound stays
        # visible.
        final_ub = bound.coverage_bound[bound.sizes.index(sizes[-1])]
        assert scores[-1] < final_ub - 0.01
