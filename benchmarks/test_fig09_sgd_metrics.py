"""Figure 9 — SGD metric values.

Paper: "none of SGD and SVD exhibits significant changes in behavior
across graph sizes, except for the outlier of nedges=10^6; compute
intensity is positively correlated to α."
"""

from conftest import (
    figure_text,
    metric_vs_alpha,
    pooled_alpha_correlation,
)
from repro.behavior.metrics import METRIC_NAMES


def test_fig09_sgd_metrics(corpus, artifact, benchmark):
    series = benchmark(lambda: {m: metric_vs_alpha(corpus, "sgd", m)
                                for m in METRIC_NAMES})
    blocks = []
    for metric, by_size in series.items():
        blocks.append(figure_text(
            f"Figure 9 [{metric}] (x = α, one series per size)",
            {f"nedges={size:g}": data for size, data in by_size.items()},
        ))
    artifact("fig09_sgd_metrics", "\n\n".join(blocks))

    runs = corpus.by_algorithm("sgd")
    # Communication is structurally pinned: every edge is read from both
    # ends and carries a gradient both ways, every iteration.
    for run in runs:
        assert run.metrics["eread"] == 2.0
        assert run.metrics["msg"] == 2.0

    # Fixed 20-iteration schedule → no size sensitivity in run length.
    assert {r.trace.n_iterations for r in runs} == {20}

    # Compute intensity rises with α.
    assert pooled_alpha_correlation(corpus, "sgd", "work") == "+"
    assert pooled_alpha_correlation(corpus, "sgd", "updt") == "+"
