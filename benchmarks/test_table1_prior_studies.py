"""Table 1 — prior comparative graph-processing studies.

Regenerates the paper's Table 1 and goes one step further: each
study's benchmark set is modeled as an ensemble over our corpus and
*scored* with spread and coverage, quantifying the paper's qualitative
critique that the published ensembles explore the behavior space
narrowly and incomparably.
"""

import pytest

from repro.ensemble.metrics import coverage, spread
from repro.ensemble.search import best_ensemble
from repro.experiments.priorwork import PRIOR_STUDIES, table1_rows
from repro.experiments.reporting import format_table


def study_pools(vectors):
    pools = {}
    for study in PRIOR_STUDIES:
        algs = set(study.mapped_algorithms())
        pool = [v for v in vectors if v.tag[0] in algs]
        if pool:
            pools[study.authors] = pool
    return pools


def test_table1_prior_studies(corpus, vectors, samples, artifact, benchmark):
    def compute():
        rows = []
        for study in PRIOR_STUDIES:
            algs = set(study.mapped_algorithms())
            pool = [v for v in vectors if v.tag[0] in algs]
            s = spread(pool) if len(pool) >= 2 else 0.0
            c = coverage(pool, samples=samples) if pool else 0.0
            rows.append((study.authors,
                         ", ".join(study.algorithms),
                         len(pool), s, c))
        return rows

    rows = benchmark(compute)
    table = format_table(
        ["study", "algorithms", "mapped runs", "spread", "coverage"],
        rows,
        title="Table 1 (+ ensemble scores over this corpus)",
    )
    raw = format_table(["authors", "systems", "algorithms", "graphs"],
                       table1_rows(), title="Table 1 (paper rows)")
    artifact("table1_prior_studies", raw + "\n\n" + table)

    # The paper's critique, quantified: every prior study's ensemble is
    # beaten by a *hand-picked* unrestricted ensemble a fraction of its
    # size.
    best10 = best_ensemble(vectors, 10, "spread").score
    for _authors, _algs, n_pool, s, _c in rows:
        if n_pool >= 10:
            assert s < best10


def test_prior_studies_are_narrow(vectors, samples):
    """Single-algorithm studies (Elser: K-core only) explore far less of
    the space than multi-algorithm ones — the paper's Section 6 point."""
    pools = study_pools(vectors)
    elser = pools["B. Elser [6]"]
    han = pools["M. Han [10]"]
    assert coverage(elser, samples=samples) < coverage(han, samples=samples)
    assert spread(elser) < spread(han)
