"""Engine throughput micro-benchmarks (not a paper artifact).

Raw performance of the vectorized engine's hot paths, tracked so that
optimizations (or regressions) to the CSR segment kernels are visible:

- one full PageRank iteration at fixed scale (gather-heavy);
- one SSSP run (frontier churn);
- one Triangle Counting run (intersection-heavy);
- the gather kernel in isolation;
- the fused-kernel ablation: edges/sec per algorithm × engine ×
  direction mode, written to ``benchmarks/artifacts/BENCH_engine.json``
  (uploaded by CI's perf-smoke step).

Timing protocol for the ablation (the satellite bugfix this file
carries): every problem is materialized **once** before any clock
starts, every arm gets one untimed warm-up run (which also supplies the
trace for the bit-identity assertions), and the timed rounds alternate
arms so drift hits all of them equally; best-of-N per arm is reported.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro._util.segments import concat_ranges, segmented_reduce
from repro.behavior.run import run_computation
from repro.generators import matrix_problem, powerlaw_graph

SCALE = 30_000  # edges


@pytest.fixture(scope="module")
def ga_problem():
    return powerlaw_graph(SCALE, 2.5, seed=41)


def test_throughput_pagerank(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("pagerank", ga_problem))
    total_reads = sum(r.edge_reads for r in trace.iterations)
    benchmark.extra_info["edge_reads_per_run"] = total_reads
    assert trace.converged


def test_throughput_sssp(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("sssp", ga_problem))
    assert trace.converged


def test_throughput_triangle(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("triangle", ga_problem))
    assert trace.n_iterations == 3


def test_throughput_gather_kernel(ga_problem, benchmark):
    """The segment-reduce gather over the full vertex set, isolated."""
    g = ga_problem.graph
    values = np.random.default_rng(0).random(g.n_arcs)
    frontier = np.arange(g.n_vertices)

    def gather_once():
        starts = g.in_ptr[frontier]
        ends = g.in_ptr[frontier + 1]
        slots = concat_ranges(starts, ends)
        return segmented_reduce(values[slots], ends - starts, "sum")

    acc = benchmark(gather_once)
    assert acc.shape == (g.n_vertices,)
    # Sanity: total equals the plain sum over all arcs.
    np.testing.assert_allclose(acc.sum(), values.sum(), rtol=1e-9)


def test_throughput_graph_construction(benchmark):
    problem = benchmark(lambda: powerlaw_graph(SCALE, 2.5, seed=42))
    assert abs(problem.graph.n_edges - SCALE) <= 0.02 * SCALE


# ----------------------------------------------------------------------
# Fused-kernel ablation → BENCH_engine.json
# ----------------------------------------------------------------------

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

ROUNDS = 3
#: The acceptance gate: at least one dense-frontier workload must run
#: ≥3× faster (model edges/sec) with the fused kernels on.
MIN_DENSE_SPEEDUP = 3.0


def _records(trace):
    return [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in trace.iterations]


def _assert_identical(reference, trace, label):
    """Bit-identity across arms: same iteration-by-iteration counters,
    same stop accounting, same results — not approximately, exactly."""
    assert _records(reference) == _records(trace), label
    assert reference.stop_reason == trace.stop_reason, label
    assert reference.converged == trace.converged, label
    assert reference.result == trace.result, label


def _bench_arms(arms):
    """Warm up each arm once, then alternate timed rounds; best-of-N.

    ``arms`` maps name → zero-argument callable returning a RunTrace.
    Returns (report_dict, {name: warmup_trace}).
    """
    traces = {name: run() for name, run in arms.items()}  # warm-up
    walls: dict[str, list[float]] = {name: [] for name in arms}
    for _ in range(ROUNDS):
        for name, run in arms.items():
            started = time.perf_counter()
            run()
            walls[name].append(time.perf_counter() - started)
    report = {}
    for name in arms:
        reads = sum(r.edge_reads for r in traces[name].iterations)
        best = min(walls[name])
        report[name] = {
            "wall_s": walls[name],
            "best_s": best,
            "total_edge_reads": reads,
            "edges_per_s": reads / best,
        }
    return report, traces


def test_bench_engine_kernels():
    """Fused CSR kernels and direction modes vs the callback paths."""
    workloads = {}

    # -- PageRank, synchronous engine: the dense-frontier workload the
    # direction optimization targets. A tight tolerance under a fixed
    # iteration budget keeps the frontier at (or near) the full vertex
    # set, where pull-mode dense gathers and the indicator-SpMV scatter
    # replace the per-frontier expansion entirely.
    pr_problem = powerlaw_graph(60_000, 2.2, seed=43)
    pr_params = {"tol": 1e-12}
    pr_options = {"max_iterations": 20, "health_policy": "off"}

    def pr_arm(**extra):
        return lambda: run_computation(
            "pagerank", pr_problem, params=pr_params,
            options={**pr_options, **extra})

    report, traces = _bench_arms({
        "push-legacy": pr_arm(fused_kernels=False),
        "push": pr_arm(direction="push"),
        "auto": pr_arm(direction="auto"),
        "pull": pr_arm(direction="pull"),
    })
    for name, trace in traces.items():
        _assert_identical(traces["push-legacy"], trace, f"pagerank/{name}")
    workloads["pagerank/sync"] = {
        "n_edges": pr_problem.graph.n_edges,
        "n_iterations": traces["pull"].n_iterations,
        "baseline": "push-legacy",
        "fused": "pull",
        "dense_frontier": True,
        "arms": report,
    }

    # -- Jacobi, synchronous engine: always-active (every iteration is
    # a full-frontier Σ A_ij·x_j), the purest dense-gather workload.
    ja_problem = matrix_problem(2_000, seed=3)
    ja_options = {"health_policy": "off"}

    def ja_arm(**extra):
        return lambda: run_computation(
            "jacobi", ja_problem, options={**ja_options, **extra})

    report, traces = _bench_arms({
        "push-legacy": ja_arm(fused_kernels=False),
        "pull": ja_arm(direction="pull"),
    })
    _assert_identical(traces["push-legacy"], traces["pull"], "jacobi/pull")
    workloads["jacobi/sync"] = {
        "n_edges": ja_problem.graph.n_edges,
        "n_iterations": traces["pull"].n_iterations,
        "baseline": "push-legacy",
        "fused": "pull",
        "dense_frontier": True,
        "arms": report,
    }

    # -- CC, edge-centric engine: the stream touches every arc every
    # iteration (dense by construction); fused mode replaces the
    # ``np.minimum.at`` scatter-add with one segment reduction.
    from repro.algorithms.registry import create
    from repro.engine.edge_centric import EdgeCentricEngine, EdgeCentricOptions

    ec_problem = powerlaw_graph(SCALE, 2.3, seed=61)

    def ec_arm(fused):
        opts = EdgeCentricOptions(fused_kernels=fused)
        return lambda: EdgeCentricEngine(opts).run(create("cc"), ec_problem)

    report, traces = _bench_arms({
        "stream-legacy": ec_arm(False),
        "stream-fused": ec_arm(True),
    })
    _assert_identical(traces["stream-legacy"], traces["stream-fused"],
                      "cc/edge-centric")
    workloads["cc/edge-centric"] = {
        "n_edges": ec_problem.graph.n_edges,
        "n_iterations": traces["stream-fused"].n_iterations,
        "baseline": "stream-legacy",
        "fused": "stream-fused",
        "dense_frontier": True,
        "arms": report,
    }

    # -- CC, graph-centric engine: threshold 0 forces every inner sweep
    # through the dense kernel; the legacy arm disables fusion outright.
    from repro.engine.graph_centric import (
        GraphCentricEngine,
        GraphCentricOptions,
    )

    def gc_arm(**kw):
        opts = GraphCentricOptions(**kw)
        return lambda: GraphCentricEngine(opts).run(create("cc"), ec_problem)

    report, traces = _bench_arms({
        "sweep-legacy": gc_arm(fused_kernels=False),
        "sweep-fused": gc_arm(direction_threshold=0.0),
    })
    _assert_identical(traces["sweep-legacy"], traces["sweep-fused"],
                      "cc/graph-centric")
    workloads["cc/graph-centric"] = {
        "n_edges": ec_problem.graph.n_edges,
        "n_iterations": traces["sweep-fused"].n_iterations,
        "baseline": "sweep-legacy",
        "fused": "sweep-fused",
        # Partition-local frontiers are sparse slices of |V|; the dense
        # kernel is forced here for coverage, not for speed.
        "dense_frontier": False,
        "arms": report,
    }

    speedups = {
        name: (w["arms"][w["fused"]]["edges_per_s"]
               / w["arms"][w["baseline"]]["edges_per_s"])
        for name, w in workloads.items()
    }
    dense = {n: s for n, s in speedups.items()
             if workloads[n]["dense_frontier"]}
    out = {
        "rounds": ROUNDS,
        "workloads": workloads,
        "speedup": speedups,
        "max_dense_frontier_speedup": max(dense.values()),
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(out, indent=2) + "\n", encoding="utf-8")

    assert max(dense.values()) >= MIN_DENSE_SPEEDUP, out["speedup"]
