"""Engine throughput micro-benchmarks (not a paper artifact).

Raw performance of the vectorized engine's hot paths, tracked so that
optimizations (or regressions) to the CSR segment kernels are visible:

- one full PageRank iteration at fixed scale (gather-heavy);
- one SSSP run (frontier churn);
- one Triangle Counting run (intersection-heavy);
- the gather kernel in isolation.
"""

import numpy as np
import pytest

from repro._util.segments import concat_ranges, segmented_reduce
from repro.behavior.run import run_computation
from repro.experiments.config import GraphSpec
from repro.generators import powerlaw_graph

SCALE = 30_000  # edges


@pytest.fixture(scope="module")
def ga_problem():
    return powerlaw_graph(SCALE, 2.5, seed=41)


def test_throughput_pagerank(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("pagerank", ga_problem))
    total_reads = sum(r.edge_reads for r in trace.iterations)
    benchmark.extra_info["edge_reads_per_run"] = total_reads
    assert trace.converged


def test_throughput_sssp(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("sssp", ga_problem))
    assert trace.converged


def test_throughput_triangle(ga_problem, benchmark):
    trace = benchmark(lambda: run_computation("triangle", ga_problem))
    assert trace.n_iterations == 3


def test_throughput_gather_kernel(ga_problem, benchmark):
    """The segment-reduce gather over the full vertex set, isolated."""
    g = ga_problem.graph
    values = np.random.default_rng(0).random(g.n_arcs)
    frontier = np.arange(g.n_vertices)

    def gather_once():
        starts = g.in_ptr[frontier]
        ends = g.in_ptr[frontier + 1]
        slots = concat_ranges(starts, ends)
        return segmented_reduce(values[slots], ends - starts, "sum")

    acc = benchmark(gather_once)
    assert acc.shape == (g.n_vertices,)
    # Sanity: total equals the plain sum over all arcs.
    np.testing.assert_allclose(acc.sum(), values.sum(), rtol=1e-9)


def test_throughput_graph_construction(benchmark):
    problem = benchmark(lambda: powerlaw_graph(SCALE, 2.5, seed=42))
    assert abs(problem.graph.n_edges - SCALE) <= 0.02 * SCALE
