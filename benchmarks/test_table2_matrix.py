"""Table 2 — graph feature variables of the experiment matrix.

Regenerates the paper's Table 2 for the active profile: per domain, the
algorithms, the varied features, and their value ranges (scaled per
DESIGN.md §2), and validates the planned-run counts that define the
behavior corpus.
"""

from repro.experiments.config import (
    ALPHAS,
    CORPUS_ALGORITHMS,
    ExperimentMatrix,
)
from repro.experiments.reporting import format_table


def test_table2_matrix(profile, artifact, benchmark):
    def compute():
        return [
            ("Graph Analytics", "CC, TC, KC, SSSP, PR, AD",
             "nedges", ", ".join(f"{s:g}" for s in profile.ga_sizes)),
            ("Graph Analytics", "", "α", ", ".join(map(str, ALPHAS))),
            ("Clustering", "KM",
             "nedges", ", ".join(f"{s:g}" for s in profile.ga_sizes)),
            ("Clustering", "", "α", ", ".join(map(str, ALPHAS))),
            ("Collaborative Filtering", "ALS, NMF, SGD, SVD",
             "nedges", ", ".join(f"{s:g}" for s in profile.cf_sizes)),
            ("Collaborative Filtering", "", "α", ", ".join(map(str, ALPHAS))),
            ("Linear Solver", "Jacobi",
             "nrows", ", ".join(map(str, profile.matrix_rows))),
            ("Graphical Model", "LBP",
             "nrows", ", ".join(map(str, profile.grid_sides))),
            ("Graphical Model", "DD",
             "nedges", ", ".join(map(str, profile.mrf_edges))),
        ]

    rows = benchmark(compute)
    artifact("table2_matrix", format_table(
        ["Domain", "Algorithms", "Variable", "Values"],
        rows, title=f"Table 2 (profile: {profile.name})"))

    matrix = ExperimentMatrix(profile)
    # 11 varied-structure algorithms × (4 sizes × 5 α) = 220 planned.
    assert len(matrix.corpus_runs()) == len(CORPUS_ALGORITHMS) * 4 * len(ALPHAS)
    # Fixed-structure algorithms contribute 4 runs each.
    assert len(matrix.all_runs()) == 220 + 12


def test_corpus_matches_paper_run_counts(corpus):
    """215 successful runs; the 5 failures are AD at the largest size."""
    assert corpus.n_runs == 215
    assert len(corpus.failures) == 5
    assert {f.algorithm for f in corpus.failures} == {"diameter"}
    largest = max(corpus.profile.ga_sizes)
    assert all(f.spec.nedges == largest for f in corpus.failures)
